//! Job, message, and event types of the ROCC simulation.

use paradyn_des::SimTime;
use paradyn_workload::ProcessClass;

/// Global application-process index.
pub type AppId = u32;

/// Daemon index.
pub type PdId = u32;

/// Token identifying an in-flight batch of samples: a dense index into the
/// model's [`TokenSlab`], recycled when the batch is consumed or dropped.
pub type Token = u32;

/// Dense arena of in-flight batches, replacing the per-event `HashMap`
/// lookups on the hot path with direct `Vec` indexing. Freed tokens are
/// recycled LIFO, so the slab's size is bounded by the peak number of
/// concurrently in-flight batches (a small multiple of the daemon count)
/// and allocation stops once the simulation reaches steady state.
#[derive(Default)]
pub struct TokenSlab {
    slots: Vec<Option<Batch>>,
    free: Vec<Token>,
    live: usize,
}

impl TokenSlab {
    /// Pre-size for an expected number of concurrent batches.
    pub fn with_capacity(cap: usize) -> TokenSlab {
        TokenSlab {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            live: 0,
        }
    }

    /// Store a batch, returning its token.
    pub fn insert(&mut self, batch: Batch) -> Token {
        self.live += 1;
        match self.free.pop() {
            Some(t) => {
                debug_assert!(self.slots[t as usize].is_none());
                self.slots[t as usize] = Some(batch);
                t
            }
            None => {
                self.slots.push(Some(batch));
                (self.slots.len() - 1) as Token
            }
        }
    }

    /// Shared access to a live batch (`None` if the token was consumed).
    #[inline]
    pub fn get(&self, t: Token) -> Option<&Batch> {
        self.slots.get(t as usize).and_then(Option::as_ref)
    }

    /// Mutable access to a live batch.
    #[inline]
    pub fn get_mut(&mut self, t: Token) -> Option<&mut Batch> {
        self.slots.get_mut(t as usize).and_then(Option::as_mut)
    }

    /// Remove and return a live batch, recycling its token.
    pub fn remove(&mut self, t: Token) -> Option<Batch> {
        let b = self.slots.get_mut(t as usize).and_then(Option::take);
        if b.is_some() {
            self.live -= 1;
            self.free.push(t);
        }
        b
    }

    /// Number of live batches.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no batches are in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterate over live batches (slab order, deterministic).
    pub fn values(&self) -> impl Iterator<Item = &Batch> {
        self.slots.iter().filter_map(Option::as_ref)
    }
}

/// A CPU occupancy request queued at a node's CPU bank.
#[derive(Clone, Copy, Debug)]
pub struct CpuJob {
    /// Owning process class (for busy-time attribution).
    pub class: ProcessClass,
    /// What to do when the request completes.
    pub kind: CpuKind,
}

/// Continuations of CPU requests.
#[derive(Clone, Copy, Debug)]
pub enum CpuKind {
    /// An application computation burst.
    AppCompute {
        /// The computing application process.
        app: AppId,
    },
    /// Daemon work to collect and forward one batch.
    PdCollect {
        /// The daemon performing the cycle.
        pd: PdId,
        /// The batch being collected.
        token: Token,
    },
    /// Merge work for an en-route child message at a tree node.
    PdMerge {
        /// The merging node.
        node: u32,
        /// The message being merged.
        token: Token,
    },
    /// Main-process handling of one received message; latency is recorded
    /// when this completes (receipt at the central collection facility).
    MainRecv {
        /// The message being consumed.
        token: Token,
    },
    /// A PVM daemon burst (its network request follows).
    PvmdCpu {
        /// Node of the PVM daemon instance.
        node: u32,
    },
    /// An other-process burst (no continuation).
    OtherCpu,
}

/// Destination of a forwarded message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dest {
    /// An intermediate tree node's daemon.
    Node(u32),
    /// The main Paradyn process.
    Main,
}

/// A network occupancy request.
#[derive(Clone, Copy, Debug)]
pub enum NetJob {
    /// An application communication step.
    AppComm {
        /// The communicating application process.
        app: AppId,
    },
    /// A daemon forward (one hop).
    Forward {
        /// The in-flight batch.
        token: Token,
        /// Where this hop lands.
        dest: Dest,
    },
    /// PVM daemon network activity.
    PvmdNet,
    /// Other-process network activity.
    OtherNet,
}

impl NetJob {
    /// Process class for busy-time attribution.
    pub fn class(&self) -> ProcessClass {
        match self {
            NetJob::AppComm { .. } => ProcessClass::Application,
            NetJob::Forward { .. } => ProcessClass::ParadynDaemon,
            NetJob::PvmdNet => ProcessClass::PvmDaemon,
            NetJob::OtherNet => ProcessClass::Other,
        }
    }
}

/// The simulation's event alphabet.
#[derive(Clone, Copy, Debug)]
pub enum Ev {
    /// Kick-off event at time zero: starts application loops, sampling
    /// timers, and background sources.
    Init,
    /// A CPU slice ended on `(bank, cpu)`.
    Slice {
        /// CPU bank index.
        bank: u32,
        /// CPU index within the bank.
        cpu: u32,
    },
    /// The shared network/bus finished its current occupancy.
    NetDone,
    /// A network occupancy on a contention-free link ended; the payload
    /// arrives at its destination.
    Deliver(NetJob),
    /// An application process's sampling timer fired.
    Sample {
        /// The sampled application process.
        app: AppId,
    },
    /// The PVM daemon on `node` issues its next request pair.
    PvmdArrival {
        /// Node index.
        node: u32,
    },
    /// An other-process CPU request arrives on `node`.
    OtherCpuArrival {
        /// Node index.
        node: u32,
    },
    /// An other-process network request arrives on `node`.
    OtherNetArrival {
        /// Node index.
        node: u32,
    },
    /// A partial-batch flush timer fired for daemon `pd` (stale unless
    /// `gen` matches the daemon's current flush generation).
    FlushTimeout {
        /// The daemon.
        pd: PdId,
        /// Flush generation the timer was armed for.
        gen: u32,
    },
    /// Adaptive batch-regulation control tick for daemon `pd`.
    AdaptTick {
        /// The daemon.
        pd: PdId,
    },
    /// Injected fault: daemon `pd` crashes, losing its buffered samples.
    DaemonCrash {
        /// The crashing daemon.
        pd: PdId,
    },
    /// Daemon `pd` finishes restarting and resumes collection.
    DaemonRecover {
        /// The recovering daemon.
        pd: PdId,
    },
    /// Retry a forward whose previous attempt hit an injected link
    /// failure (fires after the exponential backoff).
    RetryForward {
        /// Daemon (or merge node) performing the hop.
        pd: PdId,
        /// The batch being forwarded.
        token: Token,
        /// Network occupancy demand of the hop (µs), reused across
        /// attempts so a retry costs no extra random draws.
        demand_us: f64,
    },
    /// Injected fault: the main process's host CPU absorbs a burst of
    /// competing work, stalling message consumption.
    MainStall,
    /// Degradation-controller recovery tick: an app with a throttled
    /// sampling rate attempts an additive-recovery step (and re-arms while
    /// its multiplier exceeds 1).
    ThrottleTick {
        /// The throttled application process.
        app: AppId,
    },
    /// A backpressure (`on`) or credit (`!on`) edge arriving at daemon `pd`
    /// from its parent in the forwarding tree, after signalling jitter.
    Backpressure {
        /// The receiving daemon.
        pd: PdId,
        /// Pressure rising (`true`) or clearing (`false`).
        on: bool,
    },
    /// The configured overload ramp fires: offered sampling load is
    /// multiplied by the ramp factor from this instant on.
    OverloadRamp,
}

/// Payload of an in-flight batch of samples.
#[derive(Clone, Debug)]
pub struct Batch {
    /// Number of samples in the batch (merging preserves the count for
    /// latency accounting).
    pub count: u32,
    /// Sum of the samples' generation times (ns). The mean monitoring
    /// latency of the batch at receipt time `t` is
    /// `t − sum_gen/count`.
    pub sum_gen_ns: u64,
    /// When the batch was assembled by the daemon (ns). Latency measured
    /// from here excludes batch-accumulation time — the quantity the
    /// paper's NOW/SMP latency figures effectively plot (their model has
    /// batches *arriving* as units; see EXPERIMENTS.md).
    pub ready_ns: u64,
    /// Application processes whose pipe slots this batch still holds;
    /// drained (and writers unblocked) when the collect CPU work finishes.
    pub drain_apps: Vec<AppId>,
    /// Failed forward attempts on the current hop (injected link faults);
    /// reset to zero whenever a hop succeeds.
    pub attempts: u32,
}

impl Batch {
    /// Mean generation-to-receipt latency of the batch if received at
    /// `now`, in seconds (includes batch-accumulation time).
    pub fn mean_latency_s(&self, now: SimTime) -> f64 {
        debug_assert!(self.count > 0);
        let recv = now.as_nanos() as f64 * self.count as f64;
        (recv - self.sum_gen_ns as f64) / self.count as f64 / 1e9
    }

    /// Forwarding latency (batch-ready to receipt) at `now`, in seconds.
    pub fn forwarding_latency_s(&self, now: SimTime) -> f64 {
        (now.as_nanos() as f64 - self.ready_ns as f64) / 1e9
    }
}

/// Index of a process class in metric arrays.
#[inline]
pub fn class_idx(c: ProcessClass) -> usize {
    match c {
        ProcessClass::Application => 0,
        ProcessClass::ParadynDaemon => 1,
        ProcessClass::PvmDaemon => 2,
        ProcessClass::Other => 3,
        ProcessClass::MainParadyn => 4,
    }
}

/// Parent of node `i` in the binary forwarding tree (heap layout,
/// node 0 = root, which hosts the main process).
#[inline]
pub fn tree_parent(i: u32) -> u32 {
    debug_assert!(i > 0, "root has no parent");
    (i - 1) / 2
}

// ---------------------------------------------------------------------------
// Snapshot codec impls. `ProcessClass` is foreign to both this crate and the
// `Persist` trait's crate, so it is encoded inline as its `class_idx` byte.
// ---------------------------------------------------------------------------

use paradyn_des::{Dec, Enc, Persist, SnapError};

fn save_class(c: ProcessClass, w: &mut Enc) {
    w.put_u8(class_idx(c) as u8);
}

fn load_class(r: &mut Dec<'_>) -> Result<ProcessClass, SnapError> {
    let i = r.take_u8()? as usize;
    ProcessClass::ALL
        .into_iter()
        .find(|&c| class_idx(c) == i)
        .ok_or(SnapError::Malformed("unknown process class"))
}

impl Persist for Batch {
    fn save(&self, w: &mut Enc) {
        w.put_u32(self.count);
        w.put_u64(self.sum_gen_ns);
        w.put_u64(self.ready_ns);
        self.drain_apps.save(w);
        w.put_u32(self.attempts);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(Batch {
            count: r.take_u32()?,
            sum_gen_ns: r.take_u64()?,
            ready_ns: r.take_u64()?,
            drain_apps: Persist::load(r)?,
            attempts: r.take_u32()?,
        })
    }
}

impl Persist for TokenSlab {
    fn save(&self, w: &mut Enc) {
        self.slots.save(w);
        self.free.save(w);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        let slots: Vec<Option<Batch>> = Persist::load(r)?;
        let free: Vec<Token> = Persist::load(r)?;
        // Every vacant slot must appear on the free list exactly once, so
        // token recycling (LIFO order is part of the serialized free list)
        // behaves identically after a restore.
        let live = slots.iter().filter(|s| s.is_some()).count();
        if live + free.len() != slots.len() {
            return Err(SnapError::Malformed("token slab free-list size"));
        }
        let mut seen = vec![false; slots.len()];
        for &t in &free {
            match slots.get(t as usize) {
                Some(None) if !seen[t as usize] => seen[t as usize] = true,
                _ => return Err(SnapError::Malformed("token slab free-list entry")),
            }
        }
        Ok(TokenSlab { slots, free, live })
    }
}

impl Persist for CpuKind {
    fn save(&self, w: &mut Enc) {
        match *self {
            CpuKind::AppCompute { app } => {
                w.put_u8(0);
                w.put_u32(app);
            }
            CpuKind::PdCollect { pd, token } => {
                w.put_u8(1);
                w.put_u32(pd);
                w.put_u32(token);
            }
            CpuKind::PdMerge { node, token } => {
                w.put_u8(2);
                w.put_u32(node);
                w.put_u32(token);
            }
            CpuKind::MainRecv { token } => {
                w.put_u8(3);
                w.put_u32(token);
            }
            CpuKind::PvmdCpu { node } => {
                w.put_u8(4);
                w.put_u32(node);
            }
            CpuKind::OtherCpu => w.put_u8(5),
        }
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(match r.take_u8()? {
            0 => CpuKind::AppCompute { app: r.take_u32()? },
            1 => CpuKind::PdCollect {
                pd: r.take_u32()?,
                token: r.take_u32()?,
            },
            2 => CpuKind::PdMerge {
                node: r.take_u32()?,
                token: r.take_u32()?,
            },
            3 => CpuKind::MainRecv { token: r.take_u32()? },
            4 => CpuKind::PvmdCpu { node: r.take_u32()? },
            5 => CpuKind::OtherCpu,
            _ => return Err(SnapError::Malformed("CpuKind tag")),
        })
    }
}

impl Persist for CpuJob {
    fn save(&self, w: &mut Enc) {
        save_class(self.class, w);
        self.kind.save(w);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(CpuJob {
            class: load_class(r)?,
            kind: Persist::load(r)?,
        })
    }
}

impl Persist for Dest {
    fn save(&self, w: &mut Enc) {
        match *self {
            Dest::Node(n) => {
                w.put_u8(0);
                w.put_u32(n);
            }
            Dest::Main => w.put_u8(1),
        }
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(match r.take_u8()? {
            0 => Dest::Node(r.take_u32()?),
            1 => Dest::Main,
            _ => return Err(SnapError::Malformed("Dest tag")),
        })
    }
}

impl Persist for NetJob {
    fn save(&self, w: &mut Enc) {
        match *self {
            NetJob::AppComm { app } => {
                w.put_u8(0);
                w.put_u32(app);
            }
            NetJob::Forward { token, dest } => {
                w.put_u8(1);
                w.put_u32(token);
                dest.save(w);
            }
            NetJob::PvmdNet => w.put_u8(2),
            NetJob::OtherNet => w.put_u8(3),
        }
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(match r.take_u8()? {
            0 => NetJob::AppComm { app: r.take_u32()? },
            1 => NetJob::Forward {
                token: r.take_u32()?,
                dest: Persist::load(r)?,
            },
            2 => NetJob::PvmdNet,
            3 => NetJob::OtherNet,
            _ => return Err(SnapError::Malformed("NetJob tag")),
        })
    }
}

impl Persist for Ev {
    fn save(&self, w: &mut Enc) {
        match *self {
            Ev::Init => w.put_u8(0),
            Ev::Slice { bank, cpu } => {
                w.put_u8(1);
                w.put_u32(bank);
                w.put_u32(cpu);
            }
            Ev::NetDone => w.put_u8(2),
            Ev::Deliver(job) => {
                w.put_u8(3);
                job.save(w);
            }
            Ev::Sample { app } => {
                w.put_u8(4);
                w.put_u32(app);
            }
            Ev::PvmdArrival { node } => {
                w.put_u8(5);
                w.put_u32(node);
            }
            Ev::OtherCpuArrival { node } => {
                w.put_u8(6);
                w.put_u32(node);
            }
            Ev::OtherNetArrival { node } => {
                w.put_u8(7);
                w.put_u32(node);
            }
            Ev::FlushTimeout { pd, gen } => {
                w.put_u8(8);
                w.put_u32(pd);
                w.put_u32(gen);
            }
            Ev::AdaptTick { pd } => {
                w.put_u8(9);
                w.put_u32(pd);
            }
            Ev::DaemonCrash { pd } => {
                w.put_u8(10);
                w.put_u32(pd);
            }
            Ev::DaemonRecover { pd } => {
                w.put_u8(11);
                w.put_u32(pd);
            }
            Ev::RetryForward {
                pd,
                token,
                demand_us,
            } => {
                w.put_u8(12);
                w.put_u32(pd);
                w.put_u32(token);
                w.put_f64(demand_us);
            }
            Ev::MainStall => w.put_u8(13),
            Ev::ThrottleTick { app } => {
                w.put_u8(14);
                w.put_u32(app);
            }
            Ev::Backpressure { pd, on } => {
                w.put_u8(15);
                w.put_u32(pd);
                w.put_bool(on);
            }
            Ev::OverloadRamp => w.put_u8(16),
        }
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(match r.take_u8()? {
            0 => Ev::Init,
            1 => Ev::Slice {
                bank: r.take_u32()?,
                cpu: r.take_u32()?,
            },
            2 => Ev::NetDone,
            3 => Ev::Deliver(Persist::load(r)?),
            4 => Ev::Sample { app: r.take_u32()? },
            5 => Ev::PvmdArrival { node: r.take_u32()? },
            6 => Ev::OtherCpuArrival { node: r.take_u32()? },
            7 => Ev::OtherNetArrival { node: r.take_u32()? },
            8 => Ev::FlushTimeout {
                pd: r.take_u32()?,
                gen: r.take_u32()?,
            },
            9 => Ev::AdaptTick { pd: r.take_u32()? },
            10 => Ev::DaemonCrash { pd: r.take_u32()? },
            11 => Ev::DaemonRecover { pd: r.take_u32()? },
            12 => Ev::RetryForward {
                pd: r.take_u32()?,
                token: r.take_u32()?,
                demand_us: r.take_f64()?,
            },
            13 => Ev::MainStall,
            14 => Ev::ThrottleTick { app: r.take_u32()? },
            15 => Ev::Backpressure {
                pd: r.take_u32()?,
                on: r.take_bool()?,
            },
            16 => Ev::OverloadRamp,
            _ => return Err(SnapError::Malformed("Ev tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(count: u32) -> Batch {
        Batch {
            count,
            sum_gen_ns: 0,
            ready_ns: 0,
            drain_apps: vec![],
            attempts: 0,
        }
    }

    #[test]
    fn token_slab_recycles_and_stays_dense() {
        let mut slab = TokenSlab::with_capacity(2);
        let a = slab.insert(batch(1));
        let b = slab.insert(batch(2));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a).unwrap().count, 1);
        assert_eq!(slab.remove(a).unwrap().count, 1);
        assert!(slab.remove(a).is_none(), "double remove is a no-op");
        // The freed token is reused; the slab does not grow.
        let c = slab.insert(batch(3));
        assert_eq!(c, a);
        slab.get_mut(b).unwrap().attempts = 7;
        assert_eq!(slab.get(b).unwrap().attempts, 7);
        let counts: Vec<u32> = slab.values().map(|x| x.count).collect();
        assert_eq!(counts, vec![3, 2]);
        assert!(!slab.is_empty());
        slab.remove(b);
        slab.remove(c);
        assert!(slab.is_empty());
    }

    #[test]
    fn tree_parent_heap_layout() {
        assert_eq!(tree_parent(1), 0);
        assert_eq!(tree_parent(2), 0);
        assert_eq!(tree_parent(3), 1);
        assert_eq!(tree_parent(4), 1);
        assert_eq!(tree_parent(5), 2);
        assert_eq!(tree_parent(255), 127);
    }

    #[test]
    fn batch_latency_accounting() {
        // Two samples generated at 1s and 3s, received at 5s:
        // latencies 4s and 2s, mean 3s.
        let b = Batch {
            count: 2,
            sum_gen_ns: 4_000_000_000,
            ready_ns: 4_000_000_000,
            drain_apps: vec![],
            attempts: 0,
        };
        let lat = b.mean_latency_s(SimTime::from_secs_f64(5.0));
        assert!((lat - 3.0).abs() < 1e-9);
    }

    #[test]
    fn class_indices_are_distinct() {
        let mut seen = [false; 5];
        for c in ProcessClass::ALL {
            let i = class_idx(c);
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    #[test]
    fn net_job_classes() {
        assert_eq!(
            NetJob::AppComm { app: 0 }.class(),
            ProcessClass::Application
        );
        assert_eq!(
            NetJob::Forward {
                token: 0,
                dest: Dest::Main
            }
            .class(),
            ProcessClass::ParadynDaemon
        );
        assert_eq!(NetJob::PvmdNet.class(), ProcessClass::PvmDaemon);
        assert_eq!(NetJob::OtherNet.class(), ProcessClass::Other);
    }
}

//! Checkpoint persistence for the full ROCC model: [`Persist`] codecs for
//! every piece of per-run state, the [`PersistState`] wiring that lets
//! [`Sim::snapshot`]/[`Sim::restore`] capture and rebuild a `RoccModel`,
//! and the fork primitives ([`warm_snapshot`], [`fork_n`]) used by the
//! factorial sweep driver to share one warmed-up transient across
//! replications.
//!
//! The configuration itself is **not** serialized. A snapshot can only be
//! restored into a model freshly built from the *same* configuration; the
//! frame carries a fingerprint (an FNV-1a hash of the config's debug form)
//! and [`Sim::restore`] rejects any mismatch. This keeps derived topology
//! (node/daemon placement, bank shapes) out of the payload and makes every
//! load validate against by-construction invariants instead of trusting
//! the bytes.

use super::types::{CpuJob, NetJob};
use super::{Acc, AppProc, Daemon, RoccModel, Step};
use crate::config::SimConfig;
use paradyn_des::{
    fnv1a, CalendarKind, Dec, Enc, FcfsServer, Persist, PersistState, RrCpuBank, Sim, SimTime,
    SnapError, StreamRng,
};

impl Persist for Step {
    fn save(&self, w: &mut Enc) {
        w.put_u8(match self {
            Step::Compute => 0,
            Step::Comm => 1,
        });
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        match r.take_u8()? {
            0 => Ok(Step::Compute),
            1 => Ok(Step::Comm),
            _ => Err(SnapError::Malformed("app step tag")),
        }
    }
}

impl Persist for AppProc {
    fn save(&self, w: &mut Enc) {
        w.put_u32(self.node);
        w.put_u32(self.pd);
        self.cpu_rng.save(w);
        self.net_rng.save(w);
        self.sample_rng.save(w);
        self.pipe.save(w);
        self.blocked_since.save(w);
        self.paused.save(w);
        w.put_bool(self.sampling_active);
        w.put_f64(self.work_since_barrier_us);
        w.put_f64(self.current_burst_us);
        w.put_bool(self.at_barrier);
        w.put_u64(self.replay_cpu_pos);
        w.put_u64(self.replay_net_pos);
        self.throttle_rng.save(w);
        w.put_f64(self.throttle_mult);
        w.put_bool(self.pressured);
        self.pressure_cleared_at.save(w);
        w.put_bool(self.throttle_tick_armed);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(AppProc {
            node: r.take_u32()?,
            pd: r.take_u32()?,
            cpu_rng: Persist::load(r)?,
            net_rng: Persist::load(r)?,
            sample_rng: Persist::load(r)?,
            pipe: Persist::load(r)?,
            blocked_since: Persist::load(r)?,
            paused: Persist::load(r)?,
            sampling_active: r.take_bool()?,
            work_since_barrier_us: r.take_f64()?,
            current_burst_us: r.take_f64()?,
            at_barrier: r.take_bool()?,
            replay_cpu_pos: r.take_u64()?,
            replay_net_pos: r.take_u64()?,
            throttle_rng: Persist::load(r)?,
            throttle_mult: r.take_f64()?,
            pressured: r.take_bool()?,
            pressure_cleared_at: Persist::load(r)?,
            throttle_tick_armed: r.take_bool()?,
        })
    }
}

impl Persist for Daemon {
    fn save(&self, w: &mut Enc) {
        w.put_u32(self.node);
        self.cpu_rng.save(w);
        self.net_rng.save(w);
        self.merge_rng.save(w);
        self.fifo.save(w);
        w.put_bool(self.collecting);
        w.put_usize(self.batch);
        w.put_u32(self.flush_gen);
        w.put_f64(self.cpu_used_us);
        w.put_f64(self.cpu_at_last_tick_us);
        w.put_u64(self.batch_adjustments);
        w.put_u64(self.forwarded_batches);
        w.put_u64(self.forwarded_samples);
        w.put_bool(self.down);
        w.put_bool(self.doomed);
        self.crash.save(w);
        self.link_rng.save(w);
        self.fault_mon.save(w);
        w.put_bool(self.shedding);
        w.put_bool(self.remote_pressure);
        self.shed_rng.save(w);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        let d = Daemon {
            node: r.take_u32()?,
            cpu_rng: Persist::load(r)?,
            net_rng: Persist::load(r)?,
            merge_rng: Persist::load(r)?,
            fifo: Persist::load(r)?,
            collecting: r.take_bool()?,
            batch: r.take_usize()?,
            flush_gen: r.take_u32()?,
            cpu_used_us: r.take_f64()?,
            cpu_at_last_tick_us: r.take_f64()?,
            batch_adjustments: r.take_u64()?,
            forwarded_batches: r.take_u64()?,
            forwarded_samples: r.take_u64()?,
            down: r.take_bool()?,
            doomed: r.take_bool()?,
            crash: Persist::load(r)?,
            link_rng: Persist::load(r)?,
            fault_mon: Persist::load(r)?,
            shedding: r.take_bool()?,
            remote_pressure: r.take_bool()?,
            shed_rng: Persist::load(r)?,
        };
        if d.batch == 0 {
            return Err(SnapError::Malformed("daemon batch threshold of zero"));
        }
        Ok(d)
    }
}

impl Persist for Acc {
    fn save(&self, w: &mut Enc) {
        for v in &self.cpu_busy_us {
            w.put_f64(*v);
        }
        for v in &self.net_busy_us {
            w.put_f64(*v);
        }
        w.put_f64(self.latency_sum_s);
        w.put_f64(self.fwd_latency_sum_s);
        w.put_u64(self.received_samples);
        w.put_u64(self.received_msgs);
        w.put_u64(self.generated_samples);
        w.put_u64(self.barrier_ops);
        w.put_u64(self.emitted_samples);
        w.put_u64(self.lost_blocked);
        w.put_u64(self.lost_crash);
        w.put_u64(self.lost_link);
        w.put_f64(self.writer_block_us);
        w.put_f64(self.stall_injected_us);
        for v in &self.shed_by_tier {
            w.put_u64(*v);
        }
        w.put_u64(self.throttle_events);
        w.put_u64(self.backpressure_events);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        let mut acc = Acc::default();
        for v in &mut acc.cpu_busy_us {
            *v = r.take_f64()?;
        }
        for v in &mut acc.net_busy_us {
            *v = r.take_f64()?;
        }
        acc.latency_sum_s = r.take_f64()?;
        acc.fwd_latency_sum_s = r.take_f64()?;
        acc.received_samples = r.take_u64()?;
        acc.received_msgs = r.take_u64()?;
        acc.generated_samples = r.take_u64()?;
        acc.barrier_ops = r.take_u64()?;
        acc.emitted_samples = r.take_u64()?;
        acc.lost_blocked = r.take_u64()?;
        acc.lost_crash = r.take_u64()?;
        acc.lost_link = r.take_u64()?;
        acc.writer_block_us = r.take_f64()?;
        acc.stall_injected_us = r.take_f64()?;
        for v in &mut acc.shed_by_tier {
            *v = r.take_u64()?;
        }
        acc.throttle_events = r.take_u64()?;
        acc.backpressure_events = r.take_u64()?;
        Ok(acc)
    }
}

impl PersistState for RoccModel {
    /// Configuration identity for snapshot compatibility: a snapshot taken
    /// under one config can only restore into a model built from a config
    /// with the identical debug form.
    fn fingerprint(&self) -> u64 {
        fnv1a(format!("SimConfig:{:?}", self.cfg).as_bytes())
    }

    fn save_state(&self, w: &mut Enc) {
        self.banks.save(w);
        self.shared_net.save(w);
        self.apps.save(w);
        self.daemons.save(w);
        self.tokens.save(w);
        self.barrier_waiting.save(w);
        self.main_rng.save(w);
        self.pvmd_rngs.save(w);
        self.other_rngs.save(w);
        self.stall_rng.save(w);
        w.put_bool(self.overload_on);
        self.acc.save(w);
    }

    fn load_state(&mut self, r: &mut Dec<'_>) -> Result<(), SnapError> {
        let banks: Vec<RrCpuBank<CpuJob>> = Persist::load(r)?;
        if banks.len() != self.banks.len()
            || banks
                .iter()
                .zip(&self.banks)
                .any(|(got, want)| got.cpus() != want.cpus())
        {
            return Err(SnapError::Malformed("CPU bank shape differs from config"));
        }
        let shared_net: Option<FcfsServer<NetJob>> = Persist::load(r)?;
        if shared_net.is_some() != self.shared_net.is_some() {
            return Err(SnapError::Malformed("network kind differs from config"));
        }
        let apps: Vec<AppProc> = Persist::load(r)?;
        if apps.len() != self.apps.len() {
            return Err(SnapError::Malformed("app count differs from config"));
        }
        let daemons: Vec<Daemon> = Persist::load(r)?;
        if daemons.len() != self.daemons.len() {
            return Err(SnapError::Malformed("daemon count differs from config"));
        }
        let tokens = Persist::load(r)?;
        let barrier_waiting: Vec<u32> = Persist::load(r)?;
        if barrier_waiting.len() > apps.len()
            || barrier_waiting.iter().any(|&a| a as usize >= apps.len())
        {
            return Err(SnapError::Malformed("barrier roster out of range"));
        }
        let main_rng: StreamRng = Persist::load(r)?;
        let pvmd_rngs: Vec<StreamRng> = Persist::load(r)?;
        if pvmd_rngs.len() != self.pvmd_rngs.len() {
            return Err(SnapError::Malformed("pvmd stream count differs from config"));
        }
        let other_rngs: Vec<StreamRng> = Persist::load(r)?;
        if other_rngs.len() != self.other_rngs.len() {
            return Err(SnapError::Malformed("other stream count differs from config"));
        }
        let stall_rng: StreamRng = Persist::load(r)?;
        let overload_on = r.take_bool()?;
        let acc: Acc = Persist::load(r)?;
        self.banks = banks;
        self.shared_net = shared_net;
        self.apps = apps;
        self.daemons = daemons;
        self.tokens = tokens;
        self.barrier_waiting = barrier_waiting;
        self.main_rng = main_rng;
        self.pvmd_rngs = pvmd_rngs;
        self.other_rngs = other_rngs;
        self.stall_rng = stall_rng;
        self.overload_on = overload_on;
        self.acc = acc;
        Ok(())
    }
}

impl RoccModel {
    /// Decorrelate every random stream in the model from its pre-fork
    /// history by perturbing each with a sub-salt derived from `salt`.
    ///
    /// The iteration order (apps' four streams, then each daemon's five
    /// streams plus its crash schedule, then main/background/stall) is part
    /// of the format: identical `(state, salt)` always yields identical
    /// perturbed state, which the fork-equivalence tests rely on.
    pub fn perturb_streams(&mut self, salt: u64) {
        let mut i: u64 = 0;
        let mut sub = move || {
            i += 1;
            salt.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        };
        for a in &mut self.apps {
            a.cpu_rng.perturb(sub());
            a.net_rng.perturb(sub());
            a.sample_rng.perturb(sub());
            a.throttle_rng.perturb(sub());
        }
        for d in &mut self.daemons {
            d.cpu_rng.perturb(sub());
            d.net_rng.perturb(sub());
            d.merge_rng.perturb(sub());
            d.link_rng.perturb(sub());
            d.shed_rng.perturb(sub());
            if let Some(crash) = &mut d.crash {
                crash.perturb(sub());
            }
        }
        self.main_rng.perturb(sub());
        for rng in &mut self.pvmd_rngs {
            rng.perturb(sub());
        }
        for rng in &mut self.other_rngs {
            rng.perturb(sub());
        }
        self.stall_rng.perturb(sub());
    }
}

/// Build `cfg`, run the simulation to `warmup`, and seal a snapshot of the
/// warmed state (calendar contents, RNG streams, and all model state).
///
/// # Panics
/// Panics on an invalid configuration (see [`SimConfig::validate`]).
pub fn warm_snapshot(
    cfg: &SimConfig,
    warmup: SimTime,
    kind: CalendarKind,
) -> Result<Vec<u8>, SnapError> {
    let mut sim = super::build_with_calendar(cfg, kind);
    sim.snapshot(warmup)
}

/// Restore one independent simulation per salt from a single warmed
/// snapshot, perturbing each copy's random streams with its salt so the
/// forks diverge like independently seeded replications while sharing the
/// warmed-up transient.
///
/// `cfg` must be the configuration the snapshot was taken under
/// (fingerprint-checked). A fork with salt `s` is bit-identical to running
/// the base simulation from zero to the warmup point, perturbing with `s`,
/// and continuing — the snapshot only skips the shared warmup work.
///
/// # Panics
/// Panics on an invalid configuration (see [`SimConfig::validate`]).
pub fn fork_n(
    cfg: &SimConfig,
    snapshot: &[u8],
    kind: CalendarKind,
    fork_salts: &[u64],
) -> Result<Vec<Sim<RoccModel>>, SnapError> {
    fork_salts
        .iter()
        .map(|&salt| {
            let mut sim = Sim::restore(RoccModel::new(cfg.clone()), kind, snapshot)?;
            sim.model.perturb_streams(salt);
            Ok(sim)
        })
        .collect()
}

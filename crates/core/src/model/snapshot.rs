//! Checkpoint persistence for the full ROCC model: [`Persist`] codecs for
//! every piece of per-run state, the [`PersistState`] wiring that lets
//! [`Sim::snapshot`]/[`Sim::restore`] capture and rebuild a `RoccModel`,
//! and the fork primitives ([`warm_snapshot`], [`fork_n`]) used by the
//! factorial sweep driver to share one warmed-up transient across
//! replications.
//!
//! The configuration itself is **not** serialized. A snapshot can only be
//! restored into a model freshly built from the *same* configuration; the
//! frame carries a fingerprint (an FNV-1a hash of the config's debug form)
//! and [`Sim::restore`] rejects any mismatch. This keeps derived topology
//! (node/daemon placement, bank shapes) out of the payload and makes every
//! load validate against by-construction invariants instead of trusting
//! the bytes.

use super::arena::{AppCold, AppHot, Apps, DaemonCold, DaemonHot, Daemons};
use super::types::{CpuJob, NetJob};
use super::{Acc, RoccModel, Step};
use crate::config::SimConfig;
use paradyn_des::{
    fnv1a, CalendarKind, Dec, Enc, FcfsServer, Persist, PersistState, RrCpuBank, Sim, SimTime,
    SnapError, StreamRng,
};

impl Persist for Step {
    fn save(&self, w: &mut Enc) {
        w.put_u8(match self {
            Step::Compute => 0,
            Step::Comm => 1,
        });
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        match r.take_u8()? {
            0 => Ok(Step::Compute),
            1 => Ok(Step::Comm),
            _ => Err(SnapError::Malformed("app step tag")),
        }
    }
}

/// The app arena serializes row-major — one complete record per process,
/// reassembled from the hot/pipe/cold columns — so the frame stays
/// per-entity even though the in-memory layout is struct-of-arrays.
impl Persist for Apps {
    fn save(&self, w: &mut Enc) {
        w.put_usize(self.len());
        for i in 0..self.len() {
            let (h, c) = (&self.hot[i], &self.cold[i]);
            w.put_u32(h.node);
            w.put_u32(h.pd);
            h.cpu_rng.save(w);
            h.net_rng.save(w);
            c.sample_rng.save(w);
            self.pipe[i].save(w);
            c.blocked_since.save(w);
            c.paused.save(w);
            w.put_bool(c.sampling_active);
            w.put_f64(h.work_since_barrier_us);
            w.put_f64(h.current_burst_us);
            w.put_bool(h.at_barrier);
            w.put_u64(c.replay_cpu_pos);
            w.put_u64(c.replay_net_pos);
            c.throttle_rng.save(w);
            w.put_f64(c.throttle_mult);
            w.put_bool(c.pressured);
            c.pressure_cleared_at.save(w);
            w.put_bool(c.throttle_tick_armed);
        }
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        let n = r.take_usize()?;
        let mut apps = Apps::with_capacity(n);
        for _ in 0..n {
            let node = r.take_u32()?;
            let pd = r.take_u32()?;
            let cpu_rng = Persist::load(r)?;
            let net_rng = Persist::load(r)?;
            let sample_rng = Persist::load(r)?;
            let pipe = Persist::load(r)?;
            let blocked_since = Persist::load(r)?;
            let paused = Persist::load(r)?;
            let sampling_active = r.take_bool()?;
            let work_since_barrier_us = r.take_f64()?;
            let current_burst_us = r.take_f64()?;
            let at_barrier = r.take_bool()?;
            let replay_cpu_pos = r.take_u64()?;
            let replay_net_pos = r.take_u64()?;
            let throttle_rng = Persist::load(r)?;
            let throttle_mult = r.take_f64()?;
            let pressured = r.take_bool()?;
            let pressure_cleared_at = Persist::load(r)?;
            let throttle_tick_armed = r.take_bool()?;
            let hot = AppHot {
                node,
                pd,
                cpu_rng,
                net_rng,
                current_burst_us,
                work_since_barrier_us,
                at_barrier,
            };
            let cold = AppCold {
                sample_rng,
                blocked_since,
                paused,
                sampling_active,
                replay_cpu_pos,
                replay_net_pos,
                throttle_rng,
                throttle_mult,
                pressured,
                pressure_cleared_at,
                throttle_tick_armed,
            };
            apps.push(hot, pipe, cold);
        }
        Ok(apps)
    }
}

/// Row-major daemon records, mirroring [`Apps`].
impl Persist for Daemons {
    fn save(&self, w: &mut Enc) {
        w.put_usize(self.len());
        for i in 0..self.len() {
            let (h, c) = (&self.hot[i], &self.cold[i]);
            w.put_u32(h.node);
            h.cpu_rng.save(w);
            h.net_rng.save(w);
            c.merge_rng.save(w);
            self.fifo[i].save(w);
            w.put_bool(h.collecting);
            w.put_usize(h.batch);
            w.put_u32(h.flush_gen);
            w.put_f64(h.cpu_used_us);
            w.put_f64(c.cpu_at_last_tick_us);
            w.put_u64(c.batch_adjustments);
            w.put_u64(h.forwarded_batches);
            w.put_u64(h.forwarded_samples);
            w.put_bool(h.down);
            w.put_bool(h.doomed);
            c.crash.save(w);
            c.link_rng.save(w);
            c.fault_mon.save(w);
            w.put_bool(h.shedding);
            w.put_bool(h.remote_pressure);
            c.shed_rng.save(w);
        }
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        let n = r.take_usize()?;
        let mut daemons = Daemons::with_capacity(n);
        for _ in 0..n {
            let node = r.take_u32()?;
            let cpu_rng = Persist::load(r)?;
            let net_rng = Persist::load(r)?;
            let merge_rng = Persist::load(r)?;
            let fifo = Persist::load(r)?;
            let collecting = r.take_bool()?;
            let batch = r.take_usize()?;
            let flush_gen = r.take_u32()?;
            let cpu_used_us = r.take_f64()?;
            let cpu_at_last_tick_us = r.take_f64()?;
            let batch_adjustments = r.take_u64()?;
            let forwarded_batches = r.take_u64()?;
            let forwarded_samples = r.take_u64()?;
            let down = r.take_bool()?;
            let doomed = r.take_bool()?;
            let crash = Persist::load(r)?;
            let link_rng = Persist::load(r)?;
            let fault_mon = Persist::load(r)?;
            let shedding = r.take_bool()?;
            let remote_pressure = r.take_bool()?;
            let shed_rng = Persist::load(r)?;
            if batch == 0 {
                return Err(SnapError::Malformed("daemon batch threshold of zero"));
            }
            let hot = DaemonHot {
                node,
                cpu_rng,
                net_rng,
                collecting,
                down,
                doomed,
                shedding,
                remote_pressure,
                batch,
                flush_gen,
                cpu_used_us,
                forwarded_batches,
                forwarded_samples,
            };
            let cold = DaemonCold {
                merge_rng,
                cpu_at_last_tick_us,
                batch_adjustments,
                crash,
                link_rng,
                fault_mon,
                shed_rng,
            };
            daemons.push(hot, fifo, cold);
        }
        Ok(daemons)
    }
}

impl Persist for Acc {
    fn save(&self, w: &mut Enc) {
        for v in &self.cpu_busy_us {
            w.put_f64(*v);
        }
        for v in &self.net_busy_us {
            w.put_f64(*v);
        }
        w.put_f64(self.latency_sum_s);
        w.put_f64(self.fwd_latency_sum_s);
        w.put_u64(self.received_samples);
        w.put_u64(self.received_msgs);
        w.put_u64(self.generated_samples);
        w.put_u64(self.barrier_ops);
        w.put_u64(self.emitted_samples);
        w.put_u64(self.lost_blocked);
        w.put_u64(self.lost_crash);
        w.put_u64(self.lost_link);
        w.put_f64(self.writer_block_us);
        w.put_f64(self.stall_injected_us);
        for v in &self.shed_by_tier {
            w.put_u64(*v);
        }
        w.put_u64(self.throttle_events);
        w.put_u64(self.backpressure_events);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        let mut acc = Acc::default();
        for v in &mut acc.cpu_busy_us {
            *v = r.take_f64()?;
        }
        for v in &mut acc.net_busy_us {
            *v = r.take_f64()?;
        }
        acc.latency_sum_s = r.take_f64()?;
        acc.fwd_latency_sum_s = r.take_f64()?;
        acc.received_samples = r.take_u64()?;
        acc.received_msgs = r.take_u64()?;
        acc.generated_samples = r.take_u64()?;
        acc.barrier_ops = r.take_u64()?;
        acc.emitted_samples = r.take_u64()?;
        acc.lost_blocked = r.take_u64()?;
        acc.lost_crash = r.take_u64()?;
        acc.lost_link = r.take_u64()?;
        acc.writer_block_us = r.take_f64()?;
        acc.stall_injected_us = r.take_f64()?;
        for v in &mut acc.shed_by_tier {
            *v = r.take_u64()?;
        }
        acc.throttle_events = r.take_u64()?;
        acc.backpressure_events = r.take_u64()?;
        Ok(acc)
    }
}

impl PersistState for RoccModel {
    /// Configuration identity for snapshot compatibility: a snapshot taken
    /// under one config can only restore into a model built from a config
    /// with the identical debug form.
    fn fingerprint(&self) -> u64 {
        fnv1a(format!("SimConfig:{:?}", self.cfg).as_bytes())
    }

    fn save_state(&self, w: &mut Enc) {
        self.banks.save(w);
        self.shared_net.save(w);
        self.apps.save(w);
        self.daemons.save(w);
        self.tokens.save(w);
        self.barrier_waiting.save(w);
        self.main_rng.save(w);
        self.pvmd_rngs.save(w);
        self.other_rngs.save(w);
        self.stall_rng.save(w);
        w.put_bool(self.overload_on);
        w.put_usize(self.accs.len());
        for acc in &self.accs {
            acc.save(w);
        }
    }

    fn load_state(&mut self, r: &mut Dec<'_>) -> Result<(), SnapError> {
        let banks: Vec<RrCpuBank<CpuJob>> = Persist::load(r)?;
        if banks.len() != self.banks.len()
            || banks
                .iter()
                .zip(&self.banks)
                .any(|(got, want)| got.cpus() != want.cpus())
        {
            return Err(SnapError::Malformed("CPU bank shape differs from config"));
        }
        let shared_net: Option<FcfsServer<NetJob>> = Persist::load(r)?;
        if shared_net.is_some() != self.shared_net.is_some() {
            return Err(SnapError::Malformed("network kind differs from config"));
        }
        let apps: Apps = Persist::load(r)?;
        if apps.len() != self.apps.len() {
            return Err(SnapError::Malformed("app count differs from config"));
        }
        let daemons: Daemons = Persist::load(r)?;
        if daemons.len() != self.daemons.len() {
            return Err(SnapError::Malformed("daemon count differs from config"));
        }
        let tokens: super::types::TokenTable = Persist::load(r)?;
        if tokens.pds() != self.tokens.pds() {
            return Err(SnapError::Malformed("token table shape differs from config"));
        }
        let barrier_waiting: Vec<u32> = Persist::load(r)?;
        if barrier_waiting.len() > apps.len()
            || barrier_waiting.iter().any(|&a| a as usize >= apps.len())
        {
            return Err(SnapError::Malformed("barrier roster out of range"));
        }
        let main_rng: StreamRng = Persist::load(r)?;
        let pvmd_rngs: Vec<StreamRng> = Persist::load(r)?;
        if pvmd_rngs.len() != self.pvmd_rngs.len() {
            return Err(SnapError::Malformed("pvmd stream count differs from config"));
        }
        let other_rngs: Vec<StreamRng> = Persist::load(r)?;
        if other_rngs.len() != self.other_rngs.len() {
            return Err(SnapError::Malformed("other stream count differs from config"));
        }
        let stall_rng: StreamRng = Persist::load(r)?;
        let overload_on = r.take_bool()?;
        let n_accs = r.take_usize()?;
        if n_accs != self.accs.len() {
            return Err(SnapError::Malformed("accumulator count differs from config"));
        }
        let mut accs = Vec::with_capacity(n_accs);
        for _ in 0..n_accs {
            accs.push(Acc::load(r)?);
        }
        self.banks = banks;
        self.shared_net = shared_net;
        self.apps = apps;
        self.daemons = daemons;
        self.tokens = tokens;
        self.barrier_waiting = barrier_waiting;
        self.main_rng = main_rng;
        self.pvmd_rngs = pvmd_rngs;
        self.other_rngs = other_rngs;
        self.stall_rng = stall_rng;
        self.overload_on = overload_on;
        self.accs = accs;
        Ok(())
    }
}

impl RoccModel {
    /// Decorrelate every random stream in the model from its pre-fork
    /// history by perturbing each with a sub-salt derived from `salt`.
    ///
    /// The iteration order (apps' four streams, then each daemon's five
    /// streams plus its crash schedule, then main/background/stall) is part
    /// of the format: identical `(state, salt)` always yields identical
    /// perturbed state, which the fork-equivalence tests rely on.
    pub fn perturb_streams(&mut self, salt: u64) {
        let mut i: u64 = 0;
        let mut sub = move || {
            i += 1;
            salt.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        };
        for i in 0..self.apps.len() {
            let h = &mut self.apps.hot[i];
            h.cpu_rng.perturb(sub());
            h.net_rng.perturb(sub());
            let c = &mut self.apps.cold[i];
            c.sample_rng.perturb(sub());
            c.throttle_rng.perturb(sub());
        }
        for i in 0..self.daemons.len() {
            let h = &mut self.daemons.hot[i];
            h.cpu_rng.perturb(sub());
            h.net_rng.perturb(sub());
            let c = &mut self.daemons.cold[i];
            c.merge_rng.perturb(sub());
            c.link_rng.perturb(sub());
            c.shed_rng.perturb(sub());
            if let Some(crash) = &mut c.crash {
                crash.perturb(sub());
            }
        }
        self.main_rng.perturb(sub());
        for rng in &mut self.pvmd_rngs {
            rng.perturb(sub());
        }
        for rng in &mut self.other_rngs {
            rng.perturb(sub());
        }
        self.stall_rng.perturb(sub());
    }
}

/// Build `cfg`, run the simulation to `warmup`, and seal a snapshot of the
/// warmed state (calendar contents, RNG streams, and all model state).
///
/// # Panics
/// Panics on an invalid configuration (see [`SimConfig::validate`]).
pub fn warm_snapshot(
    cfg: &SimConfig,
    warmup: SimTime,
    kind: CalendarKind,
) -> Result<Vec<u8>, SnapError> {
    let mut sim = super::build_with_calendar(cfg, kind);
    sim.snapshot(warmup)
}

/// Restore one independent simulation per salt from a single warmed
/// snapshot, perturbing each copy's random streams with its salt so the
/// forks diverge like independently seeded replications while sharing the
/// warmed-up transient.
///
/// `cfg` must be the configuration the snapshot was taken under
/// (fingerprint-checked). A fork with salt `s` is bit-identical to running
/// the base simulation from zero to the warmup point, perturbing with `s`,
/// and continuing — the snapshot only skips the shared warmup work.
///
/// # Panics
/// Panics on an invalid configuration (see [`SimConfig::validate`]).
pub fn fork_n(
    cfg: &SimConfig,
    snapshot: &[u8],
    kind: CalendarKind,
    fork_salts: &[u64],
) -> Result<Vec<Sim<RoccModel>>, SnapError> {
    fork_salts
        .iter()
        .map(|&salt| {
            let mut sim = Sim::restore(RoccModel::new(cfg.clone()), kind, snapshot)?;
            sim.model.perturb_streams(salt);
            Ok(sim)
        })
        .collect()
}

//! Paradyn-daemon behaviour: collection cycles under the CF/BF policies,
//! pipe draining with writer wake-up, direct or binary-tree forwarding
//! with en-route merging, and injected crash/link faults.

use super::types::{tree_parent, Batch, CpuJob, CpuKind, Dest, Ev, NetJob, PdId, Token};
use super::{RoccModel, Step};
use crate::config::{Arch, Forwarding};
use paradyn_des::{Ctx, SimDur};
use paradyn_workload::ProcessClass;

impl RoccModel {
    /// Start a collection cycle if the daemon is idle and a full batch is
    /// buffered (CF is BF with batch = 1); otherwise arm the partial-batch
    /// flush timer, if configured.
    pub(crate) fn maybe_collect(&mut self, ctx: &mut Ctx<Ev>, pd: PdId) {
        if !self.try_collect(ctx, pd, false) {
            self.arm_flush_timer(ctx, pd);
        }
    }

    /// Attempt to start a collection cycle. With `force`, a non-empty
    /// partial batch is collected (the flush-timeout path). Returns whether
    /// a cycle started.
    fn try_collect(&mut self, ctx: &mut Ctx<Ev>, pd: PdId, force: bool) -> bool {
        let d = &mut self.daemons.hot[pd as usize];
        if d.collecting || d.down {
            return false;
        }
        let threshold = d.batch;
        let fifo = &mut self.daemons.fifo[pd as usize];
        let avail = fifo.len();
        let k = if avail >= threshold {
            threshold
        } else if force && avail > 0 {
            avail
        } else {
            return false;
        };
        let mut count = 0u32;
        let mut sum_gen_ns = 0u64;
        // Recycled drain-roster storage; returned to the pool when the
        // collect cycle finishes draining (see `pd_collect_done`).
        let mut drain_apps = self.drain_pool.pop().unwrap_or_default();
        for _ in 0..k {
            let (gen, app) = fifo.pop_front().expect("checked len");
            count += 1;
            sum_gen_ns += gen.as_nanos();
            drain_apps.push(app);
        }
        d.collecting = true;
        // Invalidate any armed flush timer; the buffer head changed.
        d.flush_gen = d.flush_gen.wrapping_add(1);
        let p = &self.cfg.params;
        let demand = p.pd.cpu_req.sample(&mut d.cpu_rng)
            + p.pd_cpu_per_extra_sample_us * (count as f64 - 1.0);
        let node = d.node;
        let token = self.alloc_token(pd, Batch {
            count,
            sum_gen_ns,
            ready_ns: ctx.now().as_nanos(),
            drain_apps,
            attempts: 0,
        });
        self.submit_cpu(
            ctx,
            self.bank_of(node),
            CpuJob {
                class: ProcessClass::ParadynDaemon,
                kind: CpuKind::PdCollect { pd, token },
            },
            demand,
        );
        if self.cfg.degradation.is_some() {
            // The FIFO shrank by a batch; a shedding daemon may now be back
            // below its low watermark (falling edge → credit).
            self.degradation_daemon_check(ctx, pd);
        }
        true
    }

    /// Arm (or re-arm) the partial-batch flush timer at
    /// `oldest buffered sample + timeout`.
    fn arm_flush_timer(&mut self, ctx: &mut Ctx<Ev>, pd: PdId) {
        let Some(timeout_us) = self.cfg.batch_timeout_us else {
            return;
        };
        let d = &mut self.daemons.hot[pd as usize];
        if d.collecting || d.down {
            return;
        }
        let Some(&(oldest, _)) = self.daemons.fifo[pd as usize].front() else {
            return;
        };
        d.flush_gen = d.flush_gen.wrapping_add(1);
        let deadline = (oldest + paradyn_des::SimDur::from_micros_f64(timeout_us))
            .max(ctx.now());
        ctx.post_at(
            deadline,
            Ev::FlushTimeout {
                pd,
                gen: d.flush_gen,
            },
        );
    }

    /// A flush timer fired: collect the waiting partial batch unless the
    /// timer is stale.
    pub(crate) fn flush_timeout(&mut self, ctx: &mut Ctx<Ev>, pd: PdId, gen: u32) {
        if self.daemons.hot[pd as usize].flush_gen != gen {
            return;
        }
        self.try_collect(ctx, pd, true);
    }

    /// Adaptive regulation tick: compare this daemon's CPU utilization over
    /// the interval against the budget and adjust its batch threshold
    /// (Section 6 extension; see [`crate::config::AdaptiveBatch`]).
    pub(crate) fn adapt_tick(&mut self, ctx: &mut Ctx<Ev>, pd: PdId) {
        let a = self.cfg.adaptive.expect("AdaptTick only scheduled when adaptive");
        let d = &mut self.daemons.hot[pd as usize];
        let c = &mut self.daemons.cold[pd as usize];
        if d.down {
            // A crashed daemon does no work; skip the adjustment (its low
            // utilization is an outage, not spare capacity) but keep the
            // control loop ticking.
            c.cpu_at_last_tick_us = d.cpu_used_us;
            ctx.post_in(
                paradyn_des::SimDur::from_micros_f64(a.interval_us),
                Ev::AdaptTick { pd },
            );
            return;
        }
        let used = d.cpu_used_us - c.cpu_at_last_tick_us;
        c.cpu_at_last_tick_us = d.cpu_used_us;
        let util = used / a.interval_us;
        let old = d.batch;
        if util > a.target_pd_util {
            d.batch = (d.batch * 2).min(a.max_batch);
        } else if util < 0.5 * a.target_pd_util {
            d.batch = (d.batch / 2).max(a.min_batch);
        }
        if d.batch != old {
            c.batch_adjustments += 1;
            // A lower threshold may make the buffered backlog collectable.
            self.maybe_collect(ctx, pd);
        }
        ctx.post_in(
            paradyn_des::SimDur::from_micros_f64(a.interval_us),
            Ev::AdaptTick { pd },
        );
    }

    /// The collect CPU work finished: the pipe reads have happened, so
    /// drain the pipes (admitting parked samples and resuming blocked
    /// writers), then put the batch on the network.
    pub(crate) fn pd_collect_done(&mut self, ctx: &mut Ctx<Ev>, pd: PdId, token: Token) {
        let mut drain_apps = std::mem::take(
            &mut self
                .tokens
                .get_mut(token)
                .expect("collect token live")
                .drain_apps,
        );
        for &app in &drain_apps {
            self.drain_one(ctx, app);
        }
        drain_apps.clear();
        self.drain_pool.push(drain_apps);
        if self.cfg.degradation.is_some() {
            // Draining may have admitted parked samples into the FIFO.
            self.degradation_daemon_check(ctx, pd);
        }
        self.daemons.hot[pd as usize].collecting = false;
        if self.daemons.hot[pd as usize].doomed {
            // The daemon crashed mid-cycle: the batch dies with it. The
            // pipe slots were still freed above — the samples are gone,
            // not stuck.
            self.daemons.hot[pd as usize].doomed = false;
            let batch = self.tokens.remove(token).expect("collect token live");
            self.accs[self.cell].lost_crash += batch.count as u64;
            self.daemons.cold[pd as usize]
                .fault_mon
                .add_lost(batch.count as u64);
            if !self.daemons.hot[pd as usize].down {
                self.maybe_collect(ctx, pd);
            }
            return;
        }
        let count = {
            let count = self.tokens.get(token).expect("collect token live").count;
            let d = &mut self.daemons.hot[pd as usize];
            d.forwarded_batches += 1;
            d.forwarded_samples += count as u64;
            count
        };
        let p = &self.cfg.params;
        let demand = p.pd.net_req.sample(&mut self.daemons.hot[pd as usize].net_rng)
            + p.pd_net_per_extra_sample_us * (count as f64 - 1.0);
        self.submit_forward(ctx, pd, token, demand);
        // The daemon is free again; more samples may already be buffered.
        self.maybe_collect(ctx, pd);
    }

    /// Put one forwarding hop on the network, subject to injected link
    /// faults: a failed attempt backs off exponentially and retries from
    /// the same daemon; once the retry budget is exhausted the whole batch
    /// is dropped. The network demand is drawn once per hop and reused
    /// across retries, so link faults perturb no other random stream.
    pub(crate) fn submit_forward(
        &mut self,
        ctx: &mut Ctx<Ev>,
        pd: PdId,
        token: Token,
        demand_us: f64,
    ) {
        if let Some(link) = self.cfg.faults.link {
            let failed = self.daemons.cold[pd as usize].link_rng.next_f64() < link.fail_prob;
            if failed {
                let attempts = {
                    let b = self.tokens.get_mut(token).expect("forward token live");
                    b.attempts += 1;
                    b.attempts
                };
                if attempts > link.max_retries {
                    let batch = self.tokens.remove(token).expect("forward token live");
                    self.accs[self.cell].lost_link += batch.count as u64;
                    self.daemons.cold[pd as usize]
                        .fault_mon
                        .add_lost(batch.count as u64);
                    return;
                }
                self.daemons.cold[pd as usize].fault_mon.add_retry();
                let backoff_us =
                    link.backoff_base_us * (1u64 << (attempts - 1).min(20)) as f64;
                ctx.post_in(
                    SimDur::from_micros_f64(backoff_us),
                    Ev::RetryForward {
                        pd,
                        token,
                        demand_us,
                    },
                );
                return;
            }
            // Hop succeeded: the retry budget is per hop.
            self.tokens
                .get_mut(token)
                .expect("forward token live")
                .attempts = 0;
        }
        let dest = self.forward_dest(self.daemons.hot[pd as usize].node);
        self.submit_net(ctx, NetJob::Forward { token, dest }, demand_us);
    }

    /// Injected daemon crash: the daemon dies, taking its pipe backlog and
    /// any in-flight collection cycle with it. The pipe is conceptually
    /// torn down and recreated on restart — unread samples are lost, their
    /// slots are freed, and a blocked writer's parked sample is admitted
    /// to the fresh pipe (graceful degradation: the application continues).
    pub(crate) fn daemon_crash(&mut self, ctx: &mut Ctx<Ev>, pd: PdId) {
        let now = ctx.now();
        let entries = {
            let d = &mut self.daemons.hot[pd as usize];
            debug_assert!(!d.down, "crash scheduled while already down");
            d.down = true;
            if d.collecting {
                d.doomed = true;
            }
            // Invalidate any armed flush timer.
            d.flush_gen = d.flush_gen.wrapping_add(1);
            self.daemons.cold[pd as usize].fault_mon.crash_at(now);
            std::mem::take(&mut self.daemons.fifo[pd as usize])
        };
        let n = entries.len() as u64;
        self.accs[self.cell].lost_crash += n;
        self.daemons.cold[pd as usize].fault_mon.add_lost(n);
        for (_gen, app) in entries {
            self.drain_one(ctx, app);
        }
        if self.cfg.degradation.is_some() {
            // The crash emptied the FIFO (parked admissions aside): a
            // shedding daemon clears its own pressure, though remote
            // pressure from an ancestor persists across the outage.
            self.degradation_daemon_check(ctx, pd);
        }
        let delay = self.daemons.cold[pd as usize]
            .crash
            .as_mut()
            .expect("crash event only scheduled with a crash plan")
            .recovery_delay();
        ctx.post_in(delay, Ev::DaemonRecover { pd });
    }

    /// The daemon finished restarting: resume collection and schedule its
    /// next failure.
    pub(crate) fn daemon_recover(&mut self, ctx: &mut Ctx<Ev>, pd: PdId) {
        let now = ctx.now();
        self.daemons.hot[pd as usize].down = false;
        let ttf = {
            let c = &mut self.daemons.cold[pd as usize];
            c.fault_mon.recover_at(now);
            c.crash
                .as_mut()
                .expect("recover event only scheduled with a crash plan")
                .time_to_failure()
        };
        ctx.post_in(ttf, Ev::DaemonCrash { pd });
        self.maybe_collect(ctx, pd);
    }

    /// Where a daemon on `node` sends its next hop.
    fn forward_dest(&self, node: u32) -> Dest {
        match self.cfg.arch {
            Arch::Mpp {
                forwarding: Forwarding::BinaryTree,
            } if node != 0 => Dest::Node(tree_parent(node)),
            _ => Dest::Main,
        }
    }

    /// Consume one pipe slot of `app`; if a parked sample was waiting, admit
    /// it and resume the blocked writer (timer and paused step).
    pub(crate) fn drain_one(&mut self, ctx: &mut Ctx<Ev>, app: u32) {
        let pd = self.apps.hot[app as usize].pd;
        if let Some(gen) = self.apps.pipe[app as usize].drain() {
            self.accs[self.cell].generated_samples += 1;
            let c = &mut self.apps.cold[app as usize];
            if let Some(since) = c.blocked_since.take() {
                self.accs[self.cell].writer_block_us += (ctx.now() - since).as_micros_f64();
            }
            let resume = c.paused.take();
            let restart_timer = !c.sampling_active;
            self.daemons.fifo[pd as usize].push_back((gen, app));
            if restart_timer {
                self.schedule_next_sample(ctx, app);
            }
            match resume {
                Some(Step::Compute) => self.app_start_step(ctx, app, Step::Compute),
                Some(Step::Comm) => self.app_start_step(ctx, app, Step::Comm),
                None => {}
            }
        }
        if self.cfg.degradation.is_some() {
            // Occupancy fell (or a parked sample was admitted); only the
            // falling pipe edge can fire here.
            self.degradation_pipe_check(ctx, app);
        }
    }

    /// A forwarded message arrived at a non-leaf tree node: charge the merge
    /// CPU work (`D_Pdm,CPU`).
    pub(crate) fn pd_merge_start(&mut self, ctx: &mut Ctx<Ev>, node: u32, token: Token) {
        let demand = self
            .cfg
            .params
            .pdm_cpu
            .sample(&mut self.daemons.cold[node as usize].merge_rng);
        self.submit_cpu(
            ctx,
            self.bank_of(node),
            CpuJob {
                class: ProcessClass::ParadynDaemon,
                kind: CpuKind::PdMerge { node, token },
            },
            demand,
        );
    }

    /// Merge work done: relay the merged message one hop up. Per the paper,
    /// "the network occupancy needed for forwarding a merged sample is the
    /// same as for forwarding a local sample" — no batch marginal here.
    pub(crate) fn pd_merge_done(&mut self, ctx: &mut Ctx<Ev>, node: u32, token: Token) {
        let demand = self
            .cfg
            .params
            .pd
            .net_req
            .sample(&mut self.daemons.hot[node as usize].net_rng);
        // Merges only occur on MPP trees, where daemon index == node, so
        // `submit_forward`'s destination lookup is the same Main-or-parent
        // hop this relay needs — and the relay hop is subject to the same
        // injected link faults as a leaf forward.
        self.submit_forward(ctx, node, token, demand);
    }
}

//! Simulation configuration: architecture, scheduling policy, forwarding
//! configuration, the experiment factors of Section 4.1, and the
//! fault-injection plan for graceful-degradation studies.

use crate::pipe::OverflowPolicy;
use paradyn_workload::{AppProfile, ReplaySchedule, RoccParams};
use std::sync::Arc;

/// How instrumentation data travels from daemons to the main process on an
/// MPP system (Figure 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Forwarding {
    /// Every daemon sends directly to the main Paradyn process.
    Direct,
    /// Daemons forward along a binary tree; non-leaf daemons receive,
    /// merge, and relay their children's messages.
    BinaryTree,
}

/// The three system architectures of the study (Section 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arch {
    /// Network of workstations: one CPU per node. `contention_free = false`
    /// routes all network occupancy through a shared Ethernet (FCFS);
    /// `true` uses a pure-delay network (the assumption of Figures 18–19).
    Now {
        /// Whether the interconnect is modelled contention-free.
        contention_free: bool,
    },
    /// Shared-memory multiprocessor: `nodes` CPUs pooled behind one ready
    /// queue; all message passing crosses a shared bus (FCFS).
    Smp,
    /// Massively parallel processor: one CPU per node, dedicated
    /// contention-free interconnect, selectable forwarding configuration.
    Mpp {
        /// Direct or binary-tree data forwarding.
        forwarding: Forwarding,
    },
}

/// When application processes emit instrumentation samples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleTiming {
    /// Poisson sampling: exponential inter-arrival with the sampling-period
    /// mean (the paper's Table 2 approximation).
    Exponential,
    /// Strictly periodic sampling.
    Periodic,
}

/// Adaptive batch-size regulation — the Section 6 extension ("the IS can
/// use the model to adapt its behavior in order to regulate overheads",
/// after Paradyn's dynamic cost model \[12\]).
///
/// Each daemon periodically compares its own CPU utilization over the last
/// control interval against `target_pd_util` and doubles its batch size
/// when over budget (cheaper per sample) or halves it when well under
/// budget (lower latency), within `[min_batch, max_batch]`.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveBatch {
    /// Daemon CPU-utilization budget (fraction of one CPU).
    pub target_pd_util: f64,
    /// Control interval in microseconds.
    pub interval_us: f64,
    /// Smallest allowed batch (1 = may fall back to CF).
    pub min_batch: usize,
    /// Largest allowed batch.
    pub max_batch: usize,
}

impl Default for AdaptiveBatch {
    fn default() -> Self {
        AdaptiveBatch {
            target_pd_util: 0.01,
            interval_us: 500_000.0,
            min_batch: 1,
            max_batch: 128,
        }
    }
}

/// Daemon crash-and-restart fault injection: each daemon fails after an
/// exponentially distributed uptime and comes back after a fixed recovery
/// delay. A crash loses the daemon's buffered (not-yet-collected) samples
/// and any batch whose collection cycle is in flight — which is exactly
/// why BF, holding larger in-daemon batches, loses more samples per crash
/// than CF.
#[derive(Clone, Copy, Debug)]
pub struct DaemonCrashFaults {
    /// Mean time between failures per daemon (µs).
    pub mtbf_us: f64,
    /// Recovery delay after a crash (µs).
    pub recovery_us: f64,
}

impl Default for DaemonCrashFaults {
    fn default() -> Self {
        DaemonCrashFaults {
            mtbf_us: 2_000_000.0,
            recovery_us: 100_000.0,
        }
    }
}

/// Transient forwarding-link failures: each forward attempt fails with
/// `fail_prob` and is retried with exponential backoff
/// (`backoff_base_us · 2^(attempt-1)`) up to `max_retries` times, after
/// which the whole batch is dropped and counted as lost.
#[derive(Clone, Copy, Debug)]
pub struct LinkFaults {
    /// Probability that one forward attempt fails.
    pub fail_prob: f64,
    /// Retries allowed per hop before the batch is dropped.
    pub max_retries: u32,
    /// Backoff before the first retry (µs); doubles per attempt.
    pub backoff_base_us: f64,
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults {
            fail_prob: 0.05,
            max_retries: 3,
            backoff_base_us: 5_000.0,
        }
    }
}

/// Slow-consumer stalls: the main process's host CPU is periodically
/// occupied by an injected burst of non-Paradyn work (mean inter-stall
/// time `interval_us`, burst length `stall_us`), delaying message
/// consumption and backing the forwarding path up.
#[derive(Clone, Copy, Debug)]
pub struct ConsumerStallFaults {
    /// Mean time between stalls (µs, exponential).
    pub interval_us: f64,
    /// CPU burst injected per stall (µs).
    pub stall_us: f64,
}

impl Default for ConsumerStallFaults {
    fn default() -> Self {
        ConsumerStallFaults {
            interval_us: 500_000.0,
            stall_us: 50_000.0,
        }
    }
}

/// Closed-loop graceful degradation (Section 6: the IS "adapt\[s\] its
/// behavior in order to regulate overheads"). Two coupled mechanisms:
///
/// * **Source throttling** — each application process runs a multiplicative
///   decrease / additive recovery controller on its sampling period. When
///   its pipe occupancy crosses `pipe_hi × capacity` (rising edge) the
///   effective sampling period is multiplied by `md_factor` (bounded by
///   `max_slowdown`); once occupancy has stayed below `pipe_lo × capacity`
///   for `hysteresis_us`, a recovery tick every `recover_period_us`
///   (jittered on a dedicated RNG stream) subtracts `recover_step` from the
///   slowdown until it returns to 1.
/// * **Daemon shedding with backpressure propagation** — each daemon sheds
///   buffered samples from sheddable priority tiers while its fifo length
///   is at or above `daemon_hi` (until it falls back to `daemon_lo`), and
///   on a tree topology propagates the pressure edge to its children so
///   upstream daemons shed *before* downstream pipes overflow.
///
/// Samples carry a priority tier derived from their metric (app) index:
/// `tier = app_index % tiers`, tier 0 highest. Tiers `< keep_tiers` are
/// protected and never shed.
///
/// All controller decisions happen at event boundaries on dedicated RNG
/// streams, so a run with `degradation: None` is bitwise-identical to the
/// pre-degradation model.
#[derive(Clone, Copy, Debug)]
pub struct DegradationConfig {
    /// Number of priority tiers (1..=4); sample tier = app index % tiers.
    pub tiers: usize,
    /// Protected top tiers that are never shed (1..=tiers).
    pub keep_tiers: usize,
    /// Pipe-occupancy high watermark as a fraction of capacity; crossing it
    /// applies multiplicative decrease to the writer's sampling rate.
    pub pipe_hi: f64,
    /// Pipe-occupancy low watermark (fraction of capacity); the pressure
    /// condition clears once occupancy falls below it.
    pub pipe_lo: f64,
    /// Daemon fifo-length high watermark; at or above it the daemon sheds
    /// sheddable tiers and signals pressure down the tree.
    pub daemon_hi: usize,
    /// Daemon fifo-length low watermark; shedding stops below it.
    pub daemon_lo: usize,
    /// Sampling-period multiplier applied on each pressure rising edge.
    pub md_factor: f64,
    /// Upper bound on the accumulated sampling-period multiplier.
    pub max_slowdown: f64,
    /// Additive decrement of the multiplier per recovery tick.
    pub recover_step: f64,
    /// Mean interval between recovery ticks (µs, jittered).
    pub recover_period_us: f64,
    /// How long the pressure condition must stay clear before recovery
    /// ticks start reducing the slowdown (µs).
    pub hysteresis_us: f64,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            tiers: 2,
            keep_tiers: 1,
            pipe_hi: 0.75,
            pipe_lo: 0.25,
            daemon_hi: 64,
            daemon_lo: 16,
            md_factor: 2.0,
            max_slowdown: 8.0,
            recover_step: 0.25,
            recover_period_us: 50_000.0,
            hysteresis_us: 100_000.0,
        }
    }
}

/// A step overload ramp: at `at_s` simulated seconds the offered sampling
/// load of every application process is multiplied by `factor` (the
/// sampling period is divided by it). `factor == 1` is inert. Drives the
/// degradation bench artifact and the chaos scenarios.
#[derive(Clone, Copy, Debug)]
pub struct OverloadRamp {
    /// When the ramp fires (simulated seconds).
    pub at_s: f64,
    /// Offered-load multiplier from `at_s` onward (>= 1).
    pub factor: f64,
}

impl Default for OverloadRamp {
    fn default() -> Self {
        OverloadRamp {
            at_s: 1.0,
            factor: 2.0,
        }
    }
}

/// The complete fault-injection plan of a run. The default plan injects
/// nothing and uses the paper's blocking pipes, so existing configurations
/// behave bit-identically to the fault-free model.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// What a full pipe does with an incoming sample.
    pub overflow: OverflowPolicy,
    /// Daemon crash+restart injection (`None` = daemons never crash).
    pub daemon_crash: Option<DaemonCrashFaults>,
    /// Forwarding-link failure injection (`None` = links never fail).
    pub link: Option<LinkFaults>,
    /// Slow-consumer stall injection (`None` = no stalls).
    pub stall: Option<ConsumerStallFaults>,
}

impl FaultPlan {
    /// Whether the plan injects any fault or lossy policy at all.
    pub fn is_active(&self) -> bool {
        self.overflow != OverflowPolicy::Block
            || self.daemon_crash.is_some()
            || self.link.is_some()
            || self.stall.is_some()
    }
}

/// Full configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// System architecture.
    pub arch: Arch,
    /// Number of nodes (NOW/MPP) or CPUs (SMP).
    pub nodes: usize,
    /// Application processes per node (NOW/MPP) or in total (SMP).
    pub apps_per_node: usize,
    /// Number of Paradyn daemons (SMP only; NOW/MPP have one per node).
    pub pds: usize,
    /// Sampling period in microseconds (mean inter-sample time per
    /// application process).
    pub sampling_period_us: f64,
    /// Sampling timing discipline.
    pub sampling: SampleTiming,
    /// Batch size for data forwarding: 1 is the collect-and-forward (CF)
    /// policy, >1 is batch-and-forward (BF).
    pub batch: usize,
    /// Maximum age (µs) a buffered sample may wait before the daemon
    /// force-flushes a partial batch — bounds BF's batch-accumulation
    /// latency. `None` = pure count-based batching (the paper's BF).
    pub batch_timeout_us: Option<f64>,
    /// Adaptive per-daemon batch regulation; overrides `batch` as the
    /// running batch size when set (Section 6 extension).
    pub adaptive: Option<AdaptiveBatch>,
    /// The application's resource-demand profile (and optional barriers).
    pub app: AppProfile,
    /// Replay the application bursts from a traced schedule instead of
    /// sampling `app`'s distributions (each process starts at a staggered
    /// offset). The fidelity end of the workload-modelling spectrum — see
    /// [`ReplaySchedule`].
    pub replay: Option<Arc<ReplaySchedule>>,
    /// Whether a barrier arrival also emits an event-trace sample
    /// (Figure 6's "event of interest" path; drives Figure 28).
    pub sample_on_barrier: bool,
    /// ROCC workload parameters.
    pub params: RoccParams,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Master random seed.
    pub seed: u64,
    /// `false` runs the uninstrumented baseline (no sampling, daemons, or
    /// main process) for the "Uninstrumented" reference curves.
    pub instrumented: bool,
    /// Include the PVM daemon and other-process background load.
    pub background: bool,
    /// Fault-injection plan (default: no faults, blocking pipes).
    pub faults: FaultPlan,
    /// Graceful-degradation controller (`None` = off: no watermarks, no
    /// throttling, no shedding — bitwise-identical to the base model).
    pub degradation: Option<DegradationConfig>,
    /// Step overload ramp (`None` = constant offered load).
    pub overload: Option<OverloadRamp>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            arch: Arch::Now {
                contention_free: false,
            },
            nodes: 8,
            apps_per_node: 1,
            pds: 1,
            sampling_period_us: 40_000.0,
            sampling: SampleTiming::Exponential,
            batch: 1,
            batch_timeout_us: None,
            adaptive: None,
            app: paradyn_workload::pvmbt(),
            replay: None,
            sample_on_barrier: true,
            params: RoccParams::default(),
            duration_s: 50.0,
            seed: 0x5EED_CAFE,
            instrumented: true,
            background: true,
            faults: FaultPlan::default(),
            degradation: None,
            overload: None,
        }
    }
}

impl SimConfig {
    /// Whether the run uses the CF policy (batch size 1).
    pub fn is_cf(&self) -> bool {
        self.batch == 1
    }

    /// Total application processes in the system.
    pub fn total_apps(&self) -> usize {
        match self.arch {
            Arch::Smp => self.apps_per_node,
            _ => self.apps_per_node * self.nodes,
        }
    }

    /// Number of daemons in the system.
    pub fn total_pds(&self) -> usize {
        match self.arch {
            Arch::Smp => self.pds,
            _ => self.nodes,
        }
    }

    /// Validate invariants; returns a human-readable complaint if invalid.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("need at least one node".into());
        }
        if self.apps_per_node == 0 {
            return Err("need at least one application process".into());
        }
        if self.batch == 0 {
            return Err("batch size must be >= 1".into());
        }
        if self.batch > 4096 {
            return Err("batch size unreasonably large (> 4096)".into());
        }
        if self.sampling_period_us <= 0.0 {
            return Err("sampling period must be positive".into());
        }
        if self.duration_s <= 0.0 {
            return Err("duration must be positive".into());
        }
        if self.pds == 0 {
            return Err("need at least one daemon".into());
        }
        if let Arch::Smp = self.arch {
            if self.pds > self.apps_per_node {
                return Err("more daemons than application processes".into());
            }
        } else if self.pds != 1 {
            return Err("NOW/MPP run exactly one daemon per node".into());
        }
        if matches!(self.arch, Arch::Mpp { forwarding: Forwarding::BinaryTree }) && self.nodes < 2
        {
            return Err("tree forwarding needs at least two nodes".into());
        }
        if self.params.pipe_capacity < self.batch && self.batch_timeout_us.is_none() {
            return Err(format!(
                "pipe capacity {} smaller than batch size {} would deadlock BF \
                 (set batch_timeout_us to allow partial flushes)",
                self.params.pipe_capacity, self.batch
            ));
        }
        if let Some(t) = self.batch_timeout_us {
            if t <= 0.0 {
                return Err("batch timeout must be positive".into());
            }
        }
        if let Some(a) = &self.adaptive {
            if a.min_batch == 0 || a.min_batch > a.max_batch {
                return Err("adaptive batch bounds must satisfy 1 <= min <= max".into());
            }
            if a.max_batch > 4096 {
                return Err("adaptive max batch unreasonably large".into());
            }
            if !(0.0..=1.0).contains(&a.target_pd_util) || a.target_pd_util == 0.0 {
                return Err("adaptive target utilization must be in (0, 1]".into());
            }
            if a.interval_us <= 0.0 {
                return Err("adaptive interval must be positive".into());
            }
            if self.params.pipe_capacity < a.max_batch && self.batch_timeout_us.is_none() {
                return Err(
                    "adaptive max batch exceeds pipe capacity without a flush timeout".into(),
                );
            }
        }
        if let Some(c) = &self.faults.daemon_crash {
            if c.mtbf_us <= 0.0 {
                return Err("daemon-crash MTBF must be positive".into());
            }
            if c.recovery_us <= 0.0 {
                return Err("daemon-crash recovery delay must be positive".into());
            }
        }
        if let Some(l) = &self.faults.link {
            if !(0.0..=1.0).contains(&l.fail_prob) {
                return Err("link failure probability must be in [0, 1]".into());
            }
            if l.max_retries > 64 {
                return Err("link max retries unreasonably large (> 64)".into());
            }
            if l.backoff_base_us <= 0.0 {
                return Err("link retry backoff must be positive".into());
            }
        }
        if let Some(s) = &self.faults.stall {
            if s.interval_us <= 0.0 || s.stall_us <= 0.0 {
                return Err("consumer-stall interval and duration must be positive".into());
            }
        }
        if let Some(d) = &self.degradation {
            if d.tiers == 0 || d.tiers > crate::metrics::MAX_TIERS {
                return Err(format!(
                    "degradation tiers must be in 1..={}",
                    crate::metrics::MAX_TIERS
                ));
            }
            if d.keep_tiers == 0 || d.keep_tiers > d.tiers {
                return Err("degradation keep_tiers must satisfy 1 <= keep <= tiers".into());
            }
            if !(d.pipe_lo > 0.0 && d.pipe_lo < d.pipe_hi && d.pipe_hi <= 1.0) {
                return Err("degradation pipe watermarks must satisfy 0 < lo < hi <= 1".into());
            }
            if d.daemon_lo >= d.daemon_hi {
                return Err("degradation daemon watermarks must satisfy lo < hi".into());
            }
            if d.md_factor <= 1.0 {
                return Err("degradation md_factor must be > 1".into());
            }
            if d.max_slowdown < d.md_factor {
                return Err("degradation max_slowdown must be >= md_factor".into());
            }
            if d.recover_step <= 0.0 {
                return Err("degradation recover_step must be positive".into());
            }
            if d.recover_period_us <= 0.0 || d.hysteresis_us < 0.0 {
                return Err(
                    "degradation recover period must be positive and hysteresis non-negative"
                        .into(),
                );
            }
        }
        if self.total_pds() > (1 << 20) {
            return Err("daemon count exceeds the token namespace (2^20)".into());
        }
        if self.params.min_forward_us <= 0.0 {
            return Err("min_forward_us must be positive".into());
        }
        if let Some(o) = &self.overload {
            if o.at_s < 0.0 {
                return Err("overload ramp time must be non-negative".into());
            }
            if o.factor < 1.0 {
                return Err("overload factor must be >= 1".into());
            }
            if o.factor > 64.0 {
                return Err("overload factor unreasonably large (> 64)".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_typical_case() {
        let c = SimConfig::default();
        c.validate().unwrap();
        assert!(c.is_cf());
        assert_eq!(c.total_apps(), 8);
        assert_eq!(c.total_pds(), 8);
    }

    #[test]
    fn smp_counts() {
        let c = SimConfig {
            arch: Arch::Smp,
            nodes: 16,
            apps_per_node: 32,
            pds: 4,
            ..Default::default()
        };
        c.validate().unwrap();
        assert_eq!(c.total_apps(), 32);
        assert_eq!(c.total_pds(), 4);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let base = SimConfig::default();
        for (msg, cfg) in [
            ("nodes", SimConfig { nodes: 0, ..base.clone() }),
            ("batch", SimConfig { batch: 0, ..base.clone() }),
            (
                "period",
                SimConfig {
                    sampling_period_us: 0.0,
                    ..base.clone()
                },
            ),
            (
                "pds on NOW",
                SimConfig {
                    pds: 2,
                    ..base.clone()
                },
            ),
            (
                "tree with 1 node",
                SimConfig {
                    arch: Arch::Mpp {
                        forwarding: Forwarding::BinaryTree,
                    },
                    nodes: 1,
                    ..base.clone()
                },
            ),
            (
                "pipe < batch",
                SimConfig {
                    batch: 4096,
                    ..base.clone()
                },
            ),
        ] {
            assert!(cfg.validate().is_err(), "expected rejection: {msg}");
        }
    }

    #[test]
    fn bf_is_not_cf() {
        let c = SimConfig {
            batch: 32,
            ..Default::default()
        };
        assert!(!c.is_cf());
        c.validate().unwrap();
    }

    #[test]
    fn default_fault_plan_is_inert_and_valid() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        assert_eq!(plan.overflow, OverflowPolicy::Block);
        let full = SimConfig {
            faults: FaultPlan {
                overflow: OverflowPolicy::DropOldest,
                daemon_crash: Some(DaemonCrashFaults::default()),
                link: Some(LinkFaults::default()),
                stall: Some(ConsumerStallFaults::default()),
            },
            ..Default::default()
        };
        assert!(full.faults.is_active());
        full.validate().unwrap();
    }

    #[test]
    fn invalid_fault_plans_are_rejected() {
        let base = SimConfig::default();
        for (msg, faults) in [
            (
                "zero mtbf",
                FaultPlan {
                    daemon_crash: Some(DaemonCrashFaults {
                        mtbf_us: 0.0,
                        ..Default::default()
                    }),
                    ..Default::default()
                },
            ),
            (
                "negative recovery",
                FaultPlan {
                    daemon_crash: Some(DaemonCrashFaults {
                        recovery_us: -1.0,
                        ..Default::default()
                    }),
                    ..Default::default()
                },
            ),
            (
                "fail_prob > 1",
                FaultPlan {
                    link: Some(LinkFaults {
                        fail_prob: 1.5,
                        ..Default::default()
                    }),
                    ..Default::default()
                },
            ),
            (
                "huge retries",
                FaultPlan {
                    link: Some(LinkFaults {
                        max_retries: 1000,
                        ..Default::default()
                    }),
                    ..Default::default()
                },
            ),
            (
                "zero stall",
                FaultPlan {
                    stall: Some(ConsumerStallFaults {
                        stall_us: 0.0,
                        ..Default::default()
                    }),
                    ..Default::default()
                },
            ),
        ] {
            let cfg = SimConfig {
                faults,
                ..base.clone()
            };
            assert!(cfg.validate().is_err(), "expected rejection: {msg}");
        }
    }

    #[test]
    fn default_degradation_and_overload_are_valid() {
        let cfg = SimConfig {
            degradation: Some(DegradationConfig::default()),
            overload: Some(OverloadRamp::default()),
            ..Default::default()
        };
        cfg.validate().unwrap();
        // And the off state is the SimConfig default.
        assert!(SimConfig::default().degradation.is_none());
        assert!(SimConfig::default().overload.is_none());
    }

    #[test]
    fn invalid_degradation_configs_are_rejected() {
        let base = SimConfig::default();
        let d = DegradationConfig::default;
        for (msg, deg) in [
            ("zero tiers", DegradationConfig { tiers: 0, ..d() }),
            ("too many tiers", DegradationConfig { tiers: 9, ..d() }),
            (
                "keep > tiers",
                DegradationConfig {
                    tiers: 2,
                    keep_tiers: 3,
                    ..d()
                },
            ),
            ("zero keep", DegradationConfig { keep_tiers: 0, ..d() }),
            (
                "lo >= hi pipe",
                DegradationConfig {
                    pipe_lo: 0.8,
                    pipe_hi: 0.8,
                    ..d()
                },
            ),
            (
                "hi > 1 pipe",
                DegradationConfig { pipe_hi: 1.5, ..d() },
            ),
            (
                "lo >= hi daemon",
                DegradationConfig {
                    daemon_lo: 64,
                    daemon_hi: 64,
                    ..d()
                },
            ),
            ("md <= 1", DegradationConfig { md_factor: 1.0, ..d() }),
            (
                "max < md",
                DegradationConfig {
                    max_slowdown: 1.5,
                    md_factor: 2.0,
                    ..d()
                },
            ),
            (
                "zero recover step",
                DegradationConfig {
                    recover_step: 0.0,
                    ..d()
                },
            ),
            (
                "zero recover period",
                DegradationConfig {
                    recover_period_us: 0.0,
                    ..d()
                },
            ),
        ] {
            let cfg = SimConfig {
                degradation: Some(deg),
                ..base.clone()
            };
            assert!(cfg.validate().is_err(), "expected rejection: {msg}");
        }
        for (msg, ramp) in [
            (
                "negative ramp time",
                OverloadRamp {
                    at_s: -1.0,
                    factor: 2.0,
                },
            ),
            (
                "factor < 1",
                OverloadRamp {
                    at_s: 1.0,
                    factor: 0.5,
                },
            ),
            (
                "huge factor",
                OverloadRamp {
                    at_s: 1.0,
                    factor: 100.0,
                },
            ),
        ] {
            let cfg = SimConfig {
                overload: Some(ramp),
                ..base.clone()
            };
            assert!(cfg.validate().is_err(), "expected rejection: {msg}");
        }
    }
}

#![warn(missing_docs)]
//! # paradyn-core — the ROCC model of the Paradyn instrumentation system
//!
//! The paper's primary contribution as an executable artifact: a
//! Resource-OCCupancy (ROCC) discrete-event model of Paradyn's data
//! collection path — instrumented application processes depositing samples
//! into bounded Unix pipes, per-node Paradyn daemons collecting and
//! forwarding them under the **collect-and-forward (CF)** or
//! **batch-and-forward (BF)** policy, **directly** or along a **binary
//! merge tree**, to the main Paradyn process — on three architectures
//! (NOW, SMP, MPP).
//!
//! * [`config`] — architectures, policies, and experiment factors;
//! * [`pipe`] — the bounded pipe with writer blocking;
//! * [`model`] — the event-driven system model (Figure 5);
//! * [`metrics`] — the paper's metric set (direct overhead, monitoring
//!   latency, throughput, application CPU utilization);
//! * [`experiment`] — single and replicated runs with confidence
//!   intervals;
//! * [`validate`] — the Table 3 measurement-vs-simulation check.
//!
//! ## Quick start
//!
//! ```
//! use paradyn_core::{run, Arch, SimConfig};
//!
//! let cf = run(&SimConfig { duration_s: 2.0, ..Default::default() });
//! let bf = run(&SimConfig { duration_s: 2.0, batch: 32, ..Default::default() });
//! // The BF policy spends less daemon CPU per forwarded sample.
//! assert!(bf.pd_cpu_util_per_node < cf.pd_cpu_util_per_node);
//! # let _ = Arch::Smp;
//! ```

pub mod config;
pub mod experiment;
pub mod metrics;
pub mod model;
pub mod pipe;
pub mod shard;
pub mod validate;

pub use config::{
    AdaptiveBatch, Arch, ConsumerStallFaults, DaemonCrashFaults, DegradationConfig, FaultPlan,
    Forwarding, LinkFaults, OverloadRamp, SampleTiming, SimConfig,
};
pub use experiment::{
    default_threads, replication_seed, run, run_forked, run_many, run_perturbed_from_zero,
    run_replicated, run_replicated_threads, Replicated,
};
pub use metrics::SimMetrics;
pub use model::snapshot::{fork_n, warm_snapshot};
pub use model::{build, build_with_calendar, RoccModel};
pub use pipe::{Deposit, OverflowPolicy, Pipe};
pub use shard::{
    exec_cell, lookahead_ns, partition, run_sharded, run_sharded_with_lookahead, shardable,
    smoke_seed,
};
pub use validate::{validate, validation_config, ValidationResult, TABLE3};

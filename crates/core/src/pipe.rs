//! The bounded Unix pipe between an instrumented application process and
//! its Paradyn daemon.
//!
//! Samples are deposited by the application's instrumentation; the daemon
//! drains them when it runs. Under the default [`OverflowPolicy::Block`], a
//! deposit into a full pipe blocks the writer — the mechanism behind the
//! application-CPU collapse at small sampling periods in the paper's
//! Figure 23 ("when the pipe is full, the application process that
//! generates a sample is blocked until the daemon is able to forward
//! outstanding data samples"). The lossy policies (`DropNewest`,
//! `DropOldest`) model a production system that prefers degraded data over
//! perturbing the application; the pipe counts every dropped sample so
//! conservation (delivered + lost + in-flight == generated) stays checkable.

use paradyn_des::SimTime;

/// What a full pipe does with an incoming sample.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum OverflowPolicy {
    /// Park the sample and block the writer until the daemon drains
    /// (Figure 23 semantics — the only behavior the paper models).
    #[default]
    Block,
    /// Discard the incoming sample; the writer keeps running.
    DropNewest,
    /// Discard the oldest queued sample to make room for the incoming one;
    /// the writer keeps running.
    DropOldest,
}

/// Result of attempting a deposit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Deposit {
    /// The sample was accepted.
    Accepted,
    /// The pipe is full; the sample is parked and the writer must block.
    WouldBlock,
    /// The writer is already blocked on a parked sample; the deposit is
    /// rejected and counted. A caller that sees this has a model bug (it
    /// should not run a blocked writer), but occupancy stays consistent
    /// instead of silently corrupting as the old `debug_assert!` allowed
    /// in release builds.
    AlreadyBlocked,
    /// Full pipe under [`OverflowPolicy::DropNewest`]: the incoming sample
    /// was discarded and counted as lost.
    DroppedNewest,
    /// Full pipe under [`OverflowPolicy::DropOldest`]: the incoming sample
    /// took the place of the oldest queued sample, which was discarded and
    /// counted as lost. The caller must evict the oldest payload from its
    /// FIFO (occupancy is unchanged).
    DroppedOldest,
}

/// Occupancy-counting model of one pipe. The actual sample payloads
/// (generation timestamps) live in the owning daemon's FIFO; the pipe
/// tracks capacity, writer blocking, and overflow losses.
#[derive(Clone, Debug)]
pub struct Pipe {
    capacity: usize,
    occupied: usize,
    policy: OverflowPolicy,
    /// Generation time of the sample waiting for space, if the writer is
    /// blocked on a full pipe.
    pending: Option<SimTime>,
    /// Cumulative number of samples that ever had to wait for space.
    blocked_deposits: u64,
    /// Samples discarded by a lossy overflow policy.
    lost: u64,
    /// Deposits rejected because the writer was already blocked.
    rejected_deposits: u64,
}

impl Pipe {
    /// A pipe holding up to `capacity` samples with the default
    /// [`OverflowPolicy::Block`].
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn new(capacity: usize) -> Self {
        Pipe::with_policy(capacity, OverflowPolicy::Block)
    }

    /// A pipe holding up to `capacity` samples with the given policy.
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn with_policy(capacity: usize, policy: OverflowPolicy) -> Self {
        assert!(capacity > 0, "pipe capacity must be positive");
        Pipe {
            capacity,
            occupied: 0,
            policy,
            pending: None,
            blocked_deposits: 0,
            lost: 0,
            rejected_deposits: 0,
        }
    }

    /// Try to deposit a sample generated at `gen`.
    ///
    /// * `Accepted` — the sample occupies a slot.
    /// * `WouldBlock` (Block policy) — the sample is parked; the writer
    ///   must stop until [`Pipe::drain`] frees space.
    /// * `AlreadyBlocked` — a parked sample already exists; rejected.
    /// * `DroppedNewest` / `DroppedOldest` — lossy-policy outcomes; the
    ///   writer never blocks.
    pub fn deposit(&mut self, gen: SimTime) -> Deposit {
        if self.pending.is_some() {
            self.rejected_deposits += 1;
            return Deposit::AlreadyBlocked;
        }
        if self.occupied < self.capacity {
            self.occupied += 1;
            return Deposit::Accepted;
        }
        match self.policy {
            OverflowPolicy::Block => {
                self.pending = Some(gen);
                self.blocked_deposits += 1;
                Deposit::WouldBlock
            }
            OverflowPolicy::DropNewest => {
                self.lost += 1;
                Deposit::DroppedNewest
            }
            OverflowPolicy::DropOldest => {
                // The incoming sample replaces the evicted oldest one, so
                // occupancy is unchanged; the caller evicts the payload.
                self.lost += 1;
                Deposit::DroppedOldest
            }
        }
    }

    /// The daemon consumed one sample. If a parked sample existed, it takes
    /// the freed slot and its generation time is returned so the caller can
    /// enqueue it and unblock the writer.
    pub fn drain(&mut self) -> Option<SimTime> {
        debug_assert!(self.occupied > 0, "drain from empty pipe");
        self.occupied -= 1;
        match self.pending.take() {
            Some(gen) => {
                self.occupied += 1;
                Some(gen)
            }
            None => None,
        }
    }

    /// Samples currently in the pipe.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Whether a writer is blocked on this pipe.
    pub fn writer_blocked(&self) -> bool {
        self.pending.is_some()
    }

    /// Number of deposits that had to block.
    pub fn blocked_deposits(&self) -> u64 {
        self.blocked_deposits
    }

    /// Samples discarded by a lossy overflow policy.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Deposits rejected with [`Deposit::AlreadyBlocked`].
    pub fn rejected_deposits(&self) -> u64 {
        self.rejected_deposits
    }

    /// The pipe's overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Whether the pipe is at capacity.
    pub fn is_full(&self) -> bool {
        self.occupied >= self.capacity
    }

    /// Total slots in the pipe.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupancy as a fraction of capacity, in `[0, 1]` — the quantity the
    /// degradation watermarks are defined over.
    pub fn fill_frac(&self) -> f64 {
        self.occupied as f64 / self.capacity as f64
    }
}

impl paradyn_des::Persist for Pipe {
    fn save(&self, w: &mut paradyn_des::Enc) {
        w.put_usize(self.capacity);
        w.put_usize(self.occupied);
        w.put_u8(match self.policy {
            OverflowPolicy::Block => 0,
            OverflowPolicy::DropNewest => 1,
            OverflowPolicy::DropOldest => 2,
        });
        self.pending.save(w);
        w.put_u64(self.blocked_deposits);
        w.put_u64(self.lost);
        w.put_u64(self.rejected_deposits);
    }
    fn load(r: &mut paradyn_des::Dec<'_>) -> Result<Self, paradyn_des::SnapError> {
        use paradyn_des::{Persist, SnapError};
        let capacity = r.take_usize()?;
        let occupied = r.take_usize()?;
        let policy = match r.take_u8()? {
            0 => OverflowPolicy::Block,
            1 => OverflowPolicy::DropNewest,
            2 => OverflowPolicy::DropOldest,
            _ => return Err(SnapError::Malformed("pipe policy tag")),
        };
        if capacity == 0 {
            return Err(SnapError::Malformed("pipe capacity zero"));
        }
        if occupied > capacity {
            return Err(SnapError::Malformed("pipe occupancy beyond capacity"));
        }
        Ok(Pipe {
            capacity,
            occupied,
            policy,
            pending: Persist::load(r)?,
            blocked_deposits: r.take_u64()?,
            lost: r.take_u64()?,
            rejected_deposits: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn accepts_until_full_then_blocks() {
        let mut p = Pipe::new(2);
        assert_eq!(p.deposit(t(1)), Deposit::Accepted);
        assert_eq!(p.deposit(t(2)), Deposit::Accepted);
        assert!(p.is_full());
        assert_eq!(p.deposit(t(3)), Deposit::WouldBlock);
        assert!(p.writer_blocked());
        assert_eq!(p.blocked_deposits(), 1);
        assert_eq!(p.occupied(), 2);
    }

    #[test]
    fn drain_hands_slot_to_parked_sample() {
        let mut p = Pipe::new(1);
        p.deposit(t(10));
        assert_eq!(p.deposit(t(20)), Deposit::WouldBlock);
        // Drain: the parked sample (gen=20) takes the slot.
        assert_eq!(p.drain(), Some(t(20)));
        assert!(!p.writer_blocked());
        assert_eq!(p.occupied(), 1);
        // Next drain frees for real.
        assert_eq!(p.drain(), None);
        assert_eq!(p.occupied(), 0);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut p = Pipe::new(3);
        for i in 0..3 {
            assert_eq!(p.deposit(t(i)), Deposit::Accepted);
        }
        assert_eq!(p.deposit(t(99)), Deposit::WouldBlock);
        assert_eq!(p.occupied(), 3);
        p.drain();
        assert_eq!(p.occupied(), 3); // parked sample reoccupied the slot
        p.drain();
        assert_eq!(p.occupied(), 2);
    }

    #[test]
    fn deposit_while_blocked_is_rejected_not_corrupted() {
        let mut p = Pipe::new(1);
        p.deposit(t(1));
        assert_eq!(p.deposit(t(2)), Deposit::WouldBlock);
        // A second deposit while blocked is a caller bug; it must be
        // rejected without touching occupancy or the parked sample.
        assert_eq!(p.deposit(t(3)), Deposit::AlreadyBlocked);
        assert_eq!(p.rejected_deposits(), 1);
        assert_eq!(p.occupied(), 1);
        assert!(p.writer_blocked());
        // The originally parked sample (gen=2) is still the one admitted.
        assert_eq!(p.drain(), Some(t(2)));
    }

    #[test]
    fn drop_newest_discards_incoming_and_never_blocks() {
        let mut p = Pipe::with_policy(2, OverflowPolicy::DropNewest);
        assert_eq!(p.deposit(t(1)), Deposit::Accepted);
        assert_eq!(p.deposit(t(2)), Deposit::Accepted);
        assert_eq!(p.deposit(t(3)), Deposit::DroppedNewest);
        assert_eq!(p.deposit(t(4)), Deposit::DroppedNewest);
        assert!(!p.writer_blocked());
        assert_eq!(p.lost(), 2);
        assert_eq!(p.occupied(), 2);
        assert_eq!(p.blocked_deposits(), 0);
    }

    #[test]
    fn drop_oldest_keeps_occupancy_and_counts_loss() {
        let mut p = Pipe::with_policy(2, OverflowPolicy::DropOldest);
        p.deposit(t(1));
        p.deposit(t(2));
        assert_eq!(p.deposit(t(3)), Deposit::DroppedOldest);
        assert_eq!(p.occupied(), 2); // newcomer replaced the evicted one
        assert_eq!(p.lost(), 1);
        assert!(!p.writer_blocked());
        // Drains never return a parked sample under lossy policies.
        assert_eq!(p.drain(), None);
        assert_eq!(p.occupied(), 1);
    }

    #[test]
    fn conservation_holds_per_policy() {
        for policy in [
            OverflowPolicy::Block,
            OverflowPolicy::DropNewest,
            OverflowPolicy::DropOldest,
        ] {
            let mut p = Pipe::with_policy(2, policy);
            let mut generated = 0u64;
            let mut delivered = 0u64;
            for i in 0..10u64 {
                if !p.writer_blocked() {
                    p.deposit(t(i));
                    generated += 1;
                }
                if i % 3 == 0 && p.occupied() > 0 {
                    if p.drain().is_some() {
                        // Parked sample admitted: it was counted at deposit.
                    }
                    delivered += 1;
                }
            }
            let in_flight = p.occupied() as u64 + u64::from(p.writer_blocked());
            assert_eq!(
                generated,
                delivered + p.lost() + in_flight,
                "conservation violated under {policy:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        Pipe::new(0);
    }
}

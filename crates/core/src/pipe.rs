//! The bounded Unix pipe between an instrumented application process and
//! its Paradyn daemon.
//!
//! Samples are deposited by the application's instrumentation; the daemon
//! drains them when it runs. A deposit into a full pipe blocks the writer —
//! the mechanism behind the application-CPU collapse at small sampling
//! periods in the paper's Figure 23 ("when the pipe is full, the
//! application process that generates a sample is blocked until the daemon
//! is able to forward outstanding data samples").

use paradyn_des::SimTime;

/// Result of attempting a deposit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Deposit {
    /// The sample was accepted.
    Accepted,
    /// The pipe is full; the sample is parked and the writer must block.
    WouldBlock,
}

/// Occupancy-counting model of one pipe. The actual sample payloads
/// (generation timestamps) live in the owning daemon's FIFO; the pipe
/// tracks capacity and writer blocking.
#[derive(Clone, Debug)]
pub struct Pipe {
    capacity: usize,
    occupied: usize,
    /// Generation time of the sample waiting for space, if the writer is
    /// blocked on a full pipe.
    pending: Option<SimTime>,
    /// Cumulative number of samples that ever had to wait for space.
    blocked_deposits: u64,
}

impl Pipe {
    /// A pipe holding up to `capacity` samples.
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pipe capacity must be positive");
        Pipe {
            capacity,
            occupied: 0,
            pending: None,
            blocked_deposits: 0,
        }
    }

    /// Try to deposit a sample generated at `gen`. On `WouldBlock` the
    /// sample is parked; the writer must stop until [`Pipe::drain`] frees
    /// space.
    pub fn deposit(&mut self, gen: SimTime) -> Deposit {
        debug_assert!(self.pending.is_none(), "writer already blocked");
        if self.occupied < self.capacity {
            self.occupied += 1;
            Deposit::Accepted
        } else {
            self.pending = Some(gen);
            self.blocked_deposits += 1;
            Deposit::WouldBlock
        }
    }

    /// The daemon consumed one sample. If a parked sample existed, it takes
    /// the freed slot and its generation time is returned so the caller can
    /// enqueue it and unblock the writer.
    pub fn drain(&mut self) -> Option<SimTime> {
        debug_assert!(self.occupied > 0, "drain from empty pipe");
        self.occupied -= 1;
        match self.pending.take() {
            Some(gen) => {
                self.occupied += 1;
                Some(gen)
            }
            None => None,
        }
    }

    /// Samples currently in the pipe.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Whether a writer is blocked on this pipe.
    pub fn writer_blocked(&self) -> bool {
        self.pending.is_some()
    }

    /// Number of deposits that had to block.
    pub fn blocked_deposits(&self) -> u64 {
        self.blocked_deposits
    }

    /// Whether the pipe is at capacity.
    pub fn is_full(&self) -> bool {
        self.occupied >= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn accepts_until_full_then_blocks() {
        let mut p = Pipe::new(2);
        assert_eq!(p.deposit(t(1)), Deposit::Accepted);
        assert_eq!(p.deposit(t(2)), Deposit::Accepted);
        assert!(p.is_full());
        assert_eq!(p.deposit(t(3)), Deposit::WouldBlock);
        assert!(p.writer_blocked());
        assert_eq!(p.blocked_deposits(), 1);
        assert_eq!(p.occupied(), 2);
    }

    #[test]
    fn drain_hands_slot_to_parked_sample() {
        let mut p = Pipe::new(1);
        p.deposit(t(10));
        assert_eq!(p.deposit(t(20)), Deposit::WouldBlock);
        // Drain: the parked sample (gen=20) takes the slot.
        assert_eq!(p.drain(), Some(t(20)));
        assert!(!p.writer_blocked());
        assert_eq!(p.occupied(), 1);
        // Next drain frees for real.
        assert_eq!(p.drain(), None);
        assert_eq!(p.occupied(), 0);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut p = Pipe::new(3);
        for i in 0..3 {
            assert_eq!(p.deposit(t(i)), Deposit::Accepted);
        }
        assert_eq!(p.deposit(t(99)), Deposit::WouldBlock);
        assert_eq!(p.occupied(), 3);
        p.drain();
        assert_eq!(p.occupied(), 3); // parked sample reoccupied the slot
        p.drain();
        assert_eq!(p.occupied(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        Pipe::new(0);
    }
}

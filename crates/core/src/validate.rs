//! The Table 3 validation scenario: simulate the same case that was traced
//! on the SP-2 (pvmbt under Paradyn, CF policy, 40 ms sampling, ~100 s) and
//! compare application and daemon CPU times against the paper's
//! measurements.

use crate::config::{Arch, SimConfig};
use crate::experiment::run;
use crate::metrics::SimMetrics;
use paradyn_workload::pvmbt;

/// The paper's Table 3 reference values (seconds of CPU time over the run).
#[derive(Clone, Copy, Debug)]
pub struct Table3Reference {
    /// Measured application CPU time on the SP-2.
    pub measured_app_cpu_s: f64,
    /// Measured Paradyn daemon CPU time.
    pub measured_pd_cpu_s: f64,
    /// The paper's own simulation results.
    pub paper_sim_app_cpu_s: f64,
    /// The paper's own simulated daemon CPU time.
    pub paper_sim_pd_cpu_s: f64,
}

/// Table 3 of the paper.
pub const TABLE3: Table3Reference = Table3Reference {
    measured_app_cpu_s: 85.71,
    measured_pd_cpu_s: 0.74,
    paper_sim_app_cpu_s: 87.96,
    paper_sim_pd_cpu_s: 0.59,
};

/// The validation configuration: one SP-2 node running pvmbt with a local
/// daemon, CF policy, 40 ms sampling, 100 s.
pub fn validation_config() -> SimConfig {
    SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 1,
        apps_per_node: 1,
        duration_s: 100.0,
        sampling_period_us: 40_000.0,
        batch: 1,
        app: pvmbt(),
        ..Default::default()
    }
}

/// Result of the validation run.
#[derive(Clone, Debug)]
pub struct ValidationResult {
    /// Our simulated metrics.
    pub metrics: SimMetrics,
    /// Our simulated application CPU time (s).
    pub app_cpu_s: f64,
    /// Our simulated daemon CPU time (s).
    pub pd_cpu_s: f64,
    /// Reference values.
    pub reference: Table3Reference,
}

impl ValidationResult {
    /// Relative error of the application CPU time against the measurement.
    pub fn app_rel_err(&self) -> f64 {
        (self.app_cpu_s - self.reference.measured_app_cpu_s).abs()
            / self.reference.measured_app_cpu_s
    }

    /// Relative error of the daemon CPU time against the measurement.
    pub fn pd_rel_err(&self) -> f64 {
        (self.pd_cpu_s - self.reference.measured_pd_cpu_s).abs()
            / self.reference.measured_pd_cpu_s
    }
}

/// Run the Table 3 validation.
pub fn validate() -> ValidationResult {
    let cfg = validation_config();
    let metrics = run(&cfg);
    ValidationResult {
        app_cpu_s: metrics.cpu_time_s(paradyn_workload::ProcessClass::Application),
        pd_cpu_s: metrics.cpu_time_s(paradyn_workload::ProcessClass::ParadynDaemon),
        metrics,
        reference: TABLE3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_tracks_table3() {
        let v = validate();
        // The paper's own simulation was within ~3% on application CPU and
        // ~20% on daemon CPU; we accept a similar band (10% / 40%).
        assert!(
            v.app_rel_err() < 0.10,
            "app CPU {} vs measured {}",
            v.app_cpu_s,
            v.reference.measured_app_cpu_s
        );
        assert!(
            v.pd_rel_err() < 0.40,
            "pd CPU {} vs measured {}",
            v.pd_cpu_s,
            v.reference.measured_pd_cpu_s
        );
    }

    #[test]
    fn validation_config_is_single_traced_node() {
        let c = validation_config();
        assert_eq!(c.nodes, 1);
        assert_eq!(c.apps_per_node, 1);
        assert!(c.is_cf());
        assert_eq!(c.duration_s, 100.0);
    }
}

//! Sharded parallel-in-run execution of the ROCC model: conservative
//! shard-per-daemon-subtree windows with a bit-identical merge
//! (DESIGN.md §11).
//!
//! A *cell* is a node of the simulated system: the node's daemon, its
//! application processes, its CPU bank, and its background sources all
//! live — and all their events execute — in that cell. On shardable
//! configurations ([`shardable`]) the only event that ever crosses a cell
//! boundary is `Deliver(NetJob::Forward)`, i.e. exactly the forwarding
//! links of Figure 4, and every such hop takes at least
//! `params.min_forward_us` of wire time. That floor is the lookahead the
//! conservative window protocol in [`paradyn_des::shard`] rests on.
//!
//! [`partition`] statically assigns cells to shards — whole daemon
//! subtrees on a binary-tree MPP, contiguous node ranges otherwise — and
//! [`run_sharded`] executes the run on `PARADYN_SHARDS`-style worker
//! counts, merging back into a [`Sim`] whose state is bit-identical to
//! the serial engine's (asserted by `tests/sharding.rs` and the
//! differential suites).

use crate::config::{Arch, Forwarding, SimConfig};
use crate::model::types::{tree_parent, Batch, Dest, Ev, NetJob, TokenTable};
use crate::model::{stream_kind, RoccModel, ShardSlice};
use paradyn_des::shard::{ShardModel, ShardPlan, ShardedSim};
use paradyn_des::{CalendarKind, Sim, SimTime, Streams};
use std::sync::Arc;

/// Whether `cfg` can run sharded: per-node CPU banks and a
/// contention-free interconnect (so cells only interact through
/// forwarding links), no global barrier (which synchronizes all
/// application processes through one roster), no degradation controller
/// (backpressure edges travel *down* the tree with no latency floor), and
/// an inert overload ramp. Shardable configurations also run with
/// per-cell sequence counters serially, making the serial run the
/// bit-exact oracle for any shard count.
pub fn shardable(cfg: &SimConfig) -> bool {
    let arch_ok = matches!(
        cfg.arch,
        Arch::Mpp { .. }
            | Arch::Now {
                contention_free: true
            }
    );
    let overload_inert = cfg.overload.is_none_or(|o| o.factor <= 1.0);
    arch_ok
        && cfg.app.barrier_period_us.is_none()
        && cfg.degradation.is_none()
        && overload_inert
}

/// Depth of node `i` in the heap-layout forwarding tree.
#[inline]
fn tree_depth(i: u32) -> u32 {
    (i + 1).ilog2()
}

/// Statically assign each cell (node) to one of `shards` shards — a pure
/// function of `(configuration, shard count)`.
///
/// On a binary-tree MPP the unit of assignment is a daemon subtree: with
/// `d = ceil(log2(shards))`, the `2^d` subtrees rooted at depth `d` are
/// dealt to shards in index order and the (few) nodes above depth `d` —
/// including the root that hosts the main process — go to shard 0. Every
/// cut edge is then a child-to-parent forwarding link. Direct-forwarding
/// and NOW topologies have only leaf-to-main links, so contiguous node
/// ranges (main's node 0 in shard 0) cut nothing else either.
pub fn partition(cfg: &SimConfig, shards: u16) -> Arc<Vec<u16>> {
    let cells = cfg.nodes;
    let s = shards as usize;
    if s <= 1 {
        return Arc::new(vec![0; cells]);
    }
    let shard_of = match cfg.arch {
        Arch::Mpp {
            forwarding: Forwarding::BinaryTree,
        } => {
            let d = usize::BITS - (s - 1).leading_zeros();
            (0..cells as u32)
                .map(|n| {
                    if tree_depth(n) < d {
                        0
                    } else {
                        let mut anc = n;
                        while tree_depth(anc) > d {
                            anc = tree_parent(anc);
                        }
                        let i = (anc as usize + 1) - (1 << d);
                        ((i * s) >> d) as u16
                    }
                })
                .collect()
        }
        _ => {
            let per = cells.div_ceil(s);
            (0..cells).map(|c| (c / per) as u16).collect()
        }
    };
    Arc::new(shard_of)
}

/// Execution cell of an event: the node whose state its handler touches.
/// Only meaningful on shardable configurations (per-node banks, node ==
/// daemon index); a pure function of the event and the static
/// configuration, shared by the model's handler prologue, the cross-shard
/// router, and the merge.
pub fn exec_cell(ev: &Ev, apps_per_node: u32) -> u32 {
    match *ev {
        Ev::Init | Ev::NetDone | Ev::MainStall | Ev::OverloadRamp => 0,
        Ev::Slice { bank, .. } => bank,
        Ev::Deliver(job) => match job {
            NetJob::AppComm { app } => app / apps_per_node,
            NetJob::Forward { dest, .. } => match dest {
                Dest::Main => 0,
                Dest::Node(n) => n,
            },
            NetJob::PvmdNet { node } | NetJob::OtherNet { node } => node,
        },
        Ev::Sample { app } | Ev::ThrottleTick { app } => app / apps_per_node,
        Ev::PvmdArrival { node }
        | Ev::OtherCpuArrival { node }
        | Ev::OtherNetArrival { node } => node,
        Ev::FlushTimeout { pd, .. }
        | Ev::AdaptTick { pd }
        | Ev::DaemonCrash { pd }
        | Ev::DaemonRecover { pd }
        | Ev::Backpressure { pd, .. }
        | Ev::RetryForward { pd, .. } => pd,
    }
}

/// The window protocol's lookahead for `cfg` in nanoseconds: the
/// forwarding-hop wire-time floor the model enforces in `submit_net`.
pub fn lookahead_ns(cfg: &SimConfig) -> u64 {
    (cfg.params.min_forward_us * 1_000.0) as u64
}

impl ShardModel for RoccModel {
    /// A forwarded batch lives in its current holder's token table; when
    /// the `Deliver(Forward)` hop crosses a shard boundary the batch
    /// travels with it.
    type Luggage = Batch;

    fn detach(&mut self, ev: &Ev) -> Option<Batch> {
        match ev {
            Ev::Deliver(NetJob::Forward { token, .. }) => self.tokens.remove(*token),
            _ => None,
        }
    }

    fn attach(&mut self, ev: &Ev, luggage: Batch) {
        if let Ev::Deliver(NetJob::Forward { token, .. }) = ev {
            self.tokens.insert_at(*token, luggage);
        }
    }
}

/// Recombine the shard models into the serial-equivalent model: each
/// cell's state comes from its owning shard, in-flight batches are
/// reunited from whichever shard currently holds them, and the result
/// continues as an ordinary serial model (`shard` cleared).
fn absorb_models(mut models: Vec<RoccModel>, shard_of: &[u16]) -> RoccModel {
    let tables: Vec<TokenTable> = models
        .iter_mut()
        .map(|m| std::mem::take(&mut m.tokens))
        .collect();
    // A token's allocating daemon `pd` lives on node `pd` (shardable
    // configurations run one daemon per node).
    let tokens = TokenTable::absorb(tables, |pd| shard_of[pd] as usize);
    let mut base = models.remove(0);
    for (i, m) in models.iter_mut().enumerate() {
        let owner = (i + 1) as u16;
        for (c, &o) in shard_of.iter().enumerate() {
            if o != owner {
                continue;
            }
            std::mem::swap(&mut base.banks[c], &mut m.banks[c]);
            std::mem::swap(&mut base.daemons.hot[c], &mut m.daemons.hot[c]);
            std::mem::swap(&mut base.daemons.fifo[c], &mut m.daemons.fifo[c]);
            std::mem::swap(&mut base.daemons.cold[c], &mut m.daemons.cold[c]);
            std::mem::swap(&mut base.accs[c], &mut m.accs[c]);
            std::mem::swap(&mut base.pvmd_rngs[c], &mut m.pvmd_rngs[c]);
            std::mem::swap(&mut base.other_rngs[c], &mut m.other_rngs[c]);
            if c == 0 {
                std::mem::swap(&mut base.main_rng, &mut m.main_rng);
                std::mem::swap(&mut base.stall_rng, &mut m.stall_rng);
            }
        }
        for a in 0..base.apps.len() {
            if shard_of[base.apps.hot[a].node as usize] != owner {
                continue;
            }
            std::mem::swap(&mut base.apps.hot[a], &mut m.apps.hot[a]);
            std::mem::swap(&mut base.apps.pipe[a], &mut m.apps.pipe[a]);
            std::mem::swap(&mut base.apps.cold[a], &mut m.apps.cold[a]);
        }
    }
    base.tokens = tokens;
    base.shard = None;
    base
}

/// Run `cfg` sharded into `shards` shards on calendar `kind` and merge
/// back into the serial-equivalent [`Sim`] at the horizon. `threads <= 1`
/// executes the window protocol on the calling thread; larger values run
/// one OS thread per shard — the result is bit-identical either way, and
/// bit-identical to the serial engine at every shard count.
///
/// # Panics
/// Panics if `cfg` is not [`shardable`], or if the run observed a
/// lookahead violation (impossible while `submit_net` enforces the
/// `min_forward_us` floor; the with-lookahead variant below exists so the
/// verification suite can prove violations *are* caught).
pub fn run_sharded(
    cfg: &SimConfig,
    kind: CalendarKind,
    shards: u16,
    threads: usize,
) -> Sim<RoccModel> {
    let (sim, violations) = run_sharded_with_lookahead(cfg, kind, shards, threads, lookahead_ns(cfg));
    assert_eq!(
        violations, 0,
        "cross-shard arrivals violated the min_forward_us lookahead"
    );
    sim
}

/// [`run_sharded`] with an explicit lookahead, returning the violation
/// count instead of asserting on it. Claiming *more* lookahead than the
/// model's real forwarding floor makes the windows unsound; the
/// verification suite uses exactly that as a seeded mutation and asserts
/// both that violations are reported and that the differential oracle
/// flags the diverged trace.
pub fn run_sharded_with_lookahead(
    cfg: &SimConfig,
    kind: CalendarKind,
    shards: u16,
    threads: usize,
    lookahead_ns: u64,
) -> (Sim<RoccModel>, u64) {
    assert!(shardable(cfg), "configuration is not shardable");
    assert!(shards >= 1, "need at least one shard");
    let shard_of = partition(cfg, shards);
    let apps_per_node = cfg.apps_per_node as u32;
    let plan = ShardPlan {
        shard_of: Arc::clone(&shard_of),
        shards,
        lookahead_ns,
    };
    let mut sharded = ShardedSim::new(
        kind,
        plan,
        Arc::new(move |ev: &Ev| exec_cell(ev, apps_per_node)),
        |me| {
            let mut m = RoccModel::new(cfg.clone());
            m.shard = Some(ShardSlice {
                me,
                shard_of: Arc::clone(&shard_of),
            });
            m
        },
        |sim, _| sim.ctx().post_at(SimTime::ZERO, Ev::Init),
    );
    sharded.run_until(SimTime::from_secs_f64(cfg.duration_s), threads);
    let violations = sharded.violations();
    let sim = sharded.merge(kind, |models| absorb_models(models, &shard_of));
    (sim, violations)
}

/// Derived seed for case `case` of the sharded smoke/differential suites
/// (stream id [`stream_kind::SHARD_SMOKE`]): scripts/verify.sh and
/// `tests/sharding.rs` draw their per-case configuration seeds here so
/// the cases are reproducible and disjoint from every model stream.
pub fn smoke_seed(master: u64, case: u64) -> u64 {
    Streams::new(master)
        .stream3(stream_kind::SHARD_SMOKE, case, 0)
        .next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mpp_tree(nodes: usize) -> SimConfig {
        SimConfig {
            arch: Arch::Mpp {
                forwarding: Forwarding::BinaryTree,
            },
            nodes,
            ..Default::default()
        }
    }

    #[test]
    fn partition_is_total_and_in_range() {
        for shards in [1u16, 2, 3, 4, 8] {
            for nodes in [2usize, 7, 31, 64] {
                let p = partition(&mpp_tree(nodes), shards);
                assert_eq!(p.len(), nodes);
                assert!(p.iter().all(|&s| s < shards));
                assert_eq!(p[0], 0, "the root (main process) stays on shard 0");
            }
        }
    }

    #[test]
    fn tree_partition_keeps_subtrees_whole() {
        // Every cut edge is a child -> parent forwarding link, and a node
        // below the cut depth always rides with its parent's subtree.
        let nodes = 63;
        for shards in [2u16, 3, 4, 8] {
            let p = partition(&mpp_tree(nodes), shards);
            let d = u32::BITS - u32::from(shards - 1).leading_zeros();
            for n in 1..nodes as u32 {
                if tree_depth(n) > d {
                    assert_eq!(
                        p[n as usize],
                        p[tree_parent(n) as usize],
                        "node {n} split from its subtree at {shards} shards"
                    );
                }
            }
        }
    }

    #[test]
    fn partition_is_pure() {
        let a = partition(&mpp_tree(31), 4);
        let b = partition(&mpp_tree(31), 4);
        assert_eq!(*a, *b);
    }

    #[test]
    fn shardable_excludes_coupling_features() {
        assert!(!shardable(&SimConfig::default()), "shared Ethernet couples all nodes");
        assert!(shardable(&mpp_tree(8)));
        assert!(shardable(&SimConfig {
            arch: Arch::Now {
                contention_free: true
            },
            ..Default::default()
        }));
        assert!(!shardable(&SimConfig {
            arch: Arch::Smp,
            ..Default::default()
        }));
        assert!(!shardable(&SimConfig {
            degradation: Some(crate::config::DegradationConfig::default()),
            ..mpp_tree(8)
        }));
        assert!(!shardable(&SimConfig {
            overload: Some(crate::config::OverloadRamp::default()),
            ..mpp_tree(8)
        }));
        let mut barrier = mpp_tree(8);
        barrier.app.barrier_period_us = Some(1_000_000.0);
        assert!(!shardable(&barrier));
    }

    #[test]
    fn smoke_seeds_are_stable_and_distinct() {
        let seeds: Vec<u64> = (0..16).map(|i| smoke_seed(7, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
        assert_eq!(smoke_seed(7, 3), seeds[3]);
    }
}

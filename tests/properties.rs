//! Property-based tests (proptest) on the core data structures and
//! invariants across the workspace.

use paradyn_core::pipe::{Deposit, Pipe};
use paradyn_des::{FcfsServer, Offer, RrCpuBank, SimDur, SimTime, Submit, Tally};
use paradyn_stats::{Design2kr, Rv, SplitMix64};
use paradyn_workload::{ProcessClass, Resource, Trace, TraceRecord};
use proptest::prelude::*;

proptest! {
    /// SimTime arithmetic: (t + d) - t == d, ordering is consistent.
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let base = SimTime::from_nanos(t);
        let dur = SimDur::from_nanos(d);
        prop_assert_eq!(((base + dur) - base).as_nanos(), d);
        prop_assert!(base + dur >= base);
    }

    /// Round-robin CPU bank conserves demand: total busy time equals total
    /// submitted demand, and every job completes exactly once — under any
    /// demand mix, CPU count, and quantum.
    #[test]
    fn rr_bank_conserves_demand(
        demands in prop::collection::vec(1u64..2_000_000, 1..40),
        cpus in 1usize..5,
        quantum_us in 1u64..20_000,
    ) {
        let mut bank = RrCpuBank::new(cpus, SimDur::from_nanos(quantum_us * 1_000));
        let mut pending: Vec<usize> = vec![]; // cpus with a live slice
        for (i, &d) in demands.iter().enumerate() {
            match bank.submit(i as u32, SimDur::from_nanos(d)) {
                Submit::Dispatched { cpu, .. } => pending.push(cpu),
                Submit::Queued(_) => {}
            }
        }
        let mut completed = vec![false; demands.len()];
        let mut guard = 0u64;
        while let Some(cpu) = pending.pop() {
            guard += 1;
            prop_assert!(guard < 10_000_000, "livelock");
            let e = bank.slice_end(cpu);
            if e.completed {
                prop_assert!(!completed[e.job as usize], "double completion");
                completed[e.job as usize] = true;
            }
            if e.next_slice.is_some() {
                pending.push(cpu);
            }
        }
        prop_assert!(completed.iter().all(|&c| c));
        let total: u64 = demands.iter().sum();
        prop_assert_eq!(bank.busy_total().as_nanos(), total);
        prop_assert_eq!(bank.completed_jobs(), demands.len() as u64);
        prop_assert_eq!(bank.ready_len(), 0);
    }

    /// FCFS server: jobs complete in submission order and busy time equals
    /// the sum of service demands.
    #[test]
    fn fcfs_is_fifo_and_conserves_service(
        services in prop::collection::vec(1u64..1_000_000, 1..30),
    ) {
        let mut s = FcfsServer::new();
        let mut clock = SimTime::ZERO;
        let mut next_end: Option<SimDur> = None;
        for (i, &svc) in services.iter().enumerate() {
            match s.submit(clock, i as u32, SimDur::from_nanos(svc)) {
                Offer::Started(d) => next_end = Some(d),
                Offer::Queued(_) => {}
            }
        }
        let mut order = vec![];
        while let Some(d) = next_end {
            clock += d;
            let (job, _svc, next) = s.complete(clock);
            order.push(job);
            next_end = next;
        }
        prop_assert_eq!(order, (0..services.len() as u32).collect::<Vec<_>>());
        let total: u64 = services.iter().sum();
        prop_assert_eq!(s.busy_total().as_nanos(), total);
        prop_assert!(!s.is_busy());
    }

    /// Pipe: occupancy never exceeds capacity under arbitrary operation
    /// sequences, and a parked sample is admitted exactly once.
    #[test]
    fn pipe_never_overflows(
        capacity in 1usize..16,
        ops in prop::collection::vec(prop::bool::ANY, 1..200),
    ) {
        let mut p = Pipe::new(capacity);
        let mut admitted = 0u64;
        let mut parked = false;
        for (i, op) in ops.into_iter().enumerate() {
            let t = SimTime::from_nanos(i as u64 + 1);
            if op {
                // Deposit (only legal when the writer is not blocked).
                if !p.writer_blocked() {
                    match p.deposit(t) {
                        Deposit::Accepted => admitted += 1,
                        Deposit::WouldBlock => parked = true,
                    }
                }
            } else if p.occupied() > 0
                && p.drain().is_some() {
                    admitted += 1;
                    parked = false;
                }
            prop_assert!(p.occupied() <= capacity);
            prop_assert_eq!(p.writer_blocked(), parked);
        }
        prop_assert!(admitted as usize >= p.occupied());
    }

    /// Rv quantile inverts the cdf for every family and parameter choice.
    #[test]
    fn quantile_inverts_cdf(
        mean in 1.0f64..1e5,
        cv in 0.05f64..3.0,
        p in 0.001f64..0.999,
    ) {
        for rv in [
            Rv::exp(mean),
            Rv::lognormal_mean_std(mean, mean * cv),
            Rv::weibull(0.5 + cv, mean),
        ] {
            let x = rv.quantile(p);
            prop_assert!((rv.cdf(x) - p).abs() < 1e-6, "{rv:?} p={p}");
        }
    }

    /// Samples from any Rv are non-negative and finite.
    #[test]
    fn samples_are_physical(seed in 0u64..u64::MAX, mean in 1.0f64..1e6) {
        let mut rng = SplitMix64(seed);
        for rv in [Rv::exp(mean), Rv::lognormal_mean_std(mean, mean)] {
            for _ in 0..100 {
                let x = rv.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0);
            }
        }
    }

    /// Tally: merging arbitrary partitions equals bulk accumulation.
    #[test]
    fn tally_merge_is_partition_invariant(
        xs in prop::collection::vec(-1e6f64..1e6, 2..100),
        split in 1usize..99,
    ) {
        let split = split.min(xs.len() - 1);
        let mut bulk = Tally::new();
        for &x in &xs {
            bulk.record(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for &x in &xs[..split] {
            a.record(x);
        }
        for &x in &xs[split..] {
            b.record(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), bulk.count());
        prop_assert!((a.mean() - bulk.mean()).abs() < 1e-6 * (1.0 + bulk.mean().abs()));
        prop_assert!((a.variance() - bulk.variance()).abs() < 1e-5 * (1.0 + bulk.variance()));
    }

    /// 2^k factorial: explained percentages always total 100.
    #[test]
    fn factorial_variation_totals_hundred(
        ys in prop::collection::vec(0.0f64..1e3, 8),
        reps in prop::collection::vec(0.0f64..10.0, 8),
    ) {
        let mut d = Design2kr::new(vec!["a", "b", "c"]);
        let mut nontrivial = false;
        for cfg in 0..8usize {
            let base = ys[cfg];
            let jitter = reps[cfg];
            d.set_responses(cfg, vec![base, base + jitter]);
            if base != 0.0 || jitter != 0.0 {
                nontrivial = true;
            }
        }
        prop_assume!(nontrivial);
        let v = d.analyze();
        let total: f64 = v.terms.iter().map(|t| t.pct).sum::<f64>() + v.sse_pct;
        prop_assert!((total - 100.0).abs() < 1e-6 || v.sst == 0.0);
        for t in &v.terms {
            prop_assert!(t.pct >= -1e-12);
        }
    }

    /// Trace codec: arbitrary records survive a write/read round trip.
    #[test]
    fn trace_codec_roundtrip(
        recs in prop::collection::vec(
            (0.0f64..1e9, 0u32..64, 0usize..5, prop::bool::ANY, 0.001f64..1e7),
            1..50,
        ),
    ) {
        let classes = ProcessClass::ALL;
        let records: Vec<TraceRecord> = recs
            .into_iter()
            .map(|(t, pid, ci, is_cpu, occ)| TraceRecord {
                t_us: (t * 1e3).round() / 1e3,
                pid,
                class: classes[ci],
                resource: if is_cpu { Resource::Cpu } else { Resource::Network },
                occupancy_us: (occ * 1e3).round() / 1e3,
            })
            .collect();
        let t = Trace::from_records(records);
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("write");
        let t2 = Trace::read_from(&buf[..]).expect("read");
        prop_assert_eq!(t.len(), t2.len());
        for (a, b) in t.records().iter().zip(t2.records()) {
            prop_assert_eq!(a.class, b.class);
            prop_assert_eq!(a.resource, b.resource);
            prop_assert_eq!(a.pid, b.pid);
            prop_assert!((a.t_us - b.t_us).abs() < 5e-4);
            prop_assert!((a.occupancy_us - b.occupancy_us).abs() < 5e-4);
        }
    }
}

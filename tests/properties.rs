//! Property-based tests on the core data structures and invariants across
//! the workspace, running on the in-tree `paradyn_stats::check` harness
//! (hermetic build: no proptest). Rerun a reported failure with
//! `PARADYN_PROP_SEED=<seed> cargo test <property name>`.

use paradyn_core::pipe::{Deposit, OverflowPolicy, Pipe};
use paradyn_des::{FcfsServer, Offer, RrCpuBank, SimDur, SimTime, Submit, Tally};
use paradyn_stats::{check, Design2kr, Rv, SplitMix64};
use paradyn_stats::{prop_assert, prop_assert_eq, prop_assume};
use paradyn_workload::{ProcessClass, Resource, Trace, TraceRecord};

/// SimTime arithmetic: (t + d) - t == d, ordering is consistent.
#[test]
fn time_add_sub_roundtrip() {
    check("time_add_sub_roundtrip", |g| {
        let t = g.u64_in(0, u64::MAX / 4);
        let d = g.u64_in(0, u64::MAX / 4);
        let base = SimTime::from_nanos(t);
        let dur = SimDur::from_nanos(d);
        prop_assert_eq!(((base + dur) - base).as_nanos(), d);
        prop_assert!(base + dur >= base);
        Ok(())
    });
}

/// Round-robin CPU bank conserves demand: total busy time equals total
/// submitted demand, and every job completes exactly once — under any
/// demand mix, CPU count, and quantum.
#[test]
fn rr_bank_conserves_demand() {
    check("rr_bank_conserves_demand", |g| {
        let demands = g.vec_u64(1, 40, 1, 2_000_000);
        let cpus = g.usize_in(1, 5);
        let quantum_us = g.u64_in(1, 20_000);
        let mut bank = RrCpuBank::new(cpus, SimDur::from_nanos(quantum_us * 1_000));
        let mut pending: Vec<usize> = vec![]; // cpus with a live slice
        for (i, &d) in demands.iter().enumerate() {
            match bank.submit(i as u32, SimDur::from_nanos(d)) {
                Submit::Dispatched { cpu, .. } => pending.push(cpu),
                Submit::Queued(_) => {}
            }
        }
        let mut completed = vec![false; demands.len()];
        let mut guard = 0u64;
        while let Some(cpu) = pending.pop() {
            guard += 1;
            prop_assert!(guard < 10_000_000, "livelock");
            let e = bank.slice_end(cpu);
            if e.completed {
                prop_assert!(!completed[e.job as usize], "double completion");
                completed[e.job as usize] = true;
            }
            if e.next_slice.is_some() {
                pending.push(cpu);
            }
        }
        prop_assert!(completed.iter().all(|&c| c));
        let total: u64 = demands.iter().sum();
        prop_assert_eq!(bank.busy_total().as_nanos(), total);
        prop_assert_eq!(bank.completed_jobs(), demands.len() as u64);
        prop_assert_eq!(bank.ready_len(), 0);
        Ok(())
    });
}

/// FCFS server: jobs complete in submission order and busy time equals
/// the sum of service demands.
#[test]
fn fcfs_is_fifo_and_conserves_service() {
    check("fcfs_is_fifo_and_conserves_service", |g| {
        let services = g.vec_u64(1, 30, 1, 1_000_000);
        let mut s = FcfsServer::new();
        let mut clock = SimTime::ZERO;
        let mut next_end: Option<SimDur> = None;
        for (i, &svc) in services.iter().enumerate() {
            match s.submit(clock, i as u32, SimDur::from_nanos(svc)) {
                Offer::Started(d) => next_end = Some(d),
                Offer::Queued(_) => {}
            }
        }
        let mut order = vec![];
        while let Some(d) = next_end {
            clock += d;
            let (job, _svc, next) = s.complete(clock);
            order.push(job);
            next_end = next;
        }
        prop_assert_eq!(order, (0..services.len() as u32).collect::<Vec<_>>());
        let total: u64 = services.iter().sum();
        prop_assert_eq!(s.busy_total().as_nanos(), total);
        prop_assert!(!s.is_busy());
        Ok(())
    });
}

/// Pipe: occupancy never exceeds capacity under arbitrary operation
/// sequences, and a parked sample is admitted exactly once.
#[test]
fn pipe_never_overflows() {
    check("pipe_never_overflows", |g| {
        let capacity = g.usize_in(1, 16);
        let ops = g.vec_bool(1, 200);
        let mut p = Pipe::new(capacity);
        let mut admitted = 0u64;
        let mut parked = false;
        for (i, op) in ops.into_iter().enumerate() {
            let t = SimTime::from_nanos(i as u64 + 1);
            if op {
                // Deposit (only legal when the writer is not blocked).
                if !p.writer_blocked() {
                    match p.deposit(t) {
                        Deposit::Accepted => admitted += 1,
                        Deposit::WouldBlock => parked = true,
                        other => prop_assert!(false, "Block pipe returned {other:?}"),
                    }
                }
            } else if p.occupied() > 0 && p.drain().is_some() {
                admitted += 1;
                parked = false;
            }
            prop_assert!(p.occupied() <= capacity);
            prop_assert_eq!(p.writer_blocked(), parked);
        }
        prop_assert!(admitted as usize >= p.occupied());
        Ok(())
    });
}

/// Every overflow policy conserves samples: accepted deposit attempts
/// equal drains + losses + occupancy + the parked sample, at every step of
/// an arbitrary operation sequence.
#[test]
fn pipe_conserves_samples_under_every_policy() {
    check("pipe_conserves_samples_under_every_policy", |g| {
        let policies = [
            OverflowPolicy::Block,
            OverflowPolicy::DropNewest,
            OverflowPolicy::DropOldest,
        ];
        let policy = *g.choice(&policies);
        let capacity = g.usize_in(1, 16);
        let ops = g.vec_bool(1, 300);
        let mut p = Pipe::with_policy(capacity, policy);
        let mut generated = 0u64;
        let mut delivered = 0u64;
        for (i, op) in ops.into_iter().enumerate() {
            let t = SimTime::from_nanos(i as u64 + 1);
            if op {
                match p.deposit(t) {
                    // A rejected double-deposit never entered the pipe.
                    Deposit::AlreadyBlocked => {}
                    _ => generated += 1,
                }
            } else if p.occupied() > 0 {
                p.drain();
                delivered += 1;
            }
            let in_flight = p.occupied() as u64 + u64::from(p.writer_blocked());
            prop_assert_eq!(generated, delivered + p.lost() + in_flight);
            prop_assert!(p.occupied() <= capacity);
            if policy != OverflowPolicy::Block {
                prop_assert!(!p.writer_blocked(), "lossy policy blocked the writer");
                prop_assert_eq!(p.blocked_deposits(), 0);
            }
        }
        Ok(())
    });
}

/// Capacity-1 pipes under the lossy policies: the degenerate single-slot
/// edge where every overflowing deposit competes with the only queued
/// sample. DropNewest discards the newcomer, DropOldest replaces the sole
/// occupant — either way occupancy stays pinned at one, nothing blocks,
/// and loss grows by exactly one per overflowing deposit.
#[test]
fn capacity_one_lossy_pipes_pin_occupancy() {
    check("capacity_one_lossy_pipes_pin_occupancy", |g| {
        let policy = *g.choice(&[OverflowPolicy::DropNewest, OverflowPolicy::DropOldest]);
        let ops = g.vec_bool(1, 200);
        let mut p = Pipe::with_policy(1, policy);
        let mut lost = 0u64;
        for (i, op) in ops.into_iter().enumerate() {
            let t = SimTime::from_nanos(i as u64 + 1);
            if op {
                let was_full = p.is_full();
                let r = p.deposit(t);
                if was_full {
                    lost += 1;
                    let want = match policy {
                        OverflowPolicy::DropNewest => Deposit::DroppedNewest,
                        _ => Deposit::DroppedOldest,
                    };
                    prop_assert_eq!(r, want);
                    prop_assert_eq!(p.occupied(), 1);
                } else {
                    prop_assert_eq!(r, Deposit::Accepted);
                }
            } else if p.occupied() > 0 {
                prop_assert_eq!(p.drain(), None);
            }
            prop_assert!(!p.writer_blocked(), "lossy capacity-1 pipe blocked");
            prop_assert!(p.occupied() <= 1);
            prop_assert_eq!(p.lost(), lost);
            prop_assert_eq!(p.blocked_deposits(), 0);
            prop_assert_eq!(p.rejected_deposits(), 0);
        }
        Ok(())
    });
}

/// Block policy with the writer resumed within the same timestamp batch:
/// a drain at the very timestamp the writer parked at admits the parked
/// sample immediately, and the resumed writer's next deposit at that same
/// time parks again (never `AlreadyBlocked`) — the exact sequence the
/// event loop performs when a drain and a sampling tick share a timestamp.
#[test]
fn blocked_writer_resumes_within_same_timestamp_batch() {
    check("blocked_writer_resumes_within_same_timestamp_batch", |g| {
        let capacity = g.usize_in(1, 9);
        let t = SimTime::from_nanos(g.u64_in(1, 1_000_000));
        let mut p = Pipe::new(capacity);
        for _ in 0..capacity {
            prop_assert_eq!(p.deposit(t), Deposit::Accepted);
        }
        prop_assert_eq!(p.deposit(t), Deposit::WouldBlock);
        prop_assert!(p.writer_blocked());
        // Drain at the SAME timestamp: the parked sample takes the slot
        // and carries its original generation time.
        prop_assert_eq!(p.drain(), Some(t));
        prop_assert!(!p.writer_blocked());
        prop_assert_eq!(p.occupied(), capacity);
        // The resumed writer deposits again in the same batch: the pipe is
        // full again, so it parks again rather than being rejected.
        prop_assert_eq!(p.deposit(t), Deposit::WouldBlock);
        prop_assert_eq!(p.blocked_deposits(), 2);
        prop_assert_eq!(p.drain(), Some(t));
        // Drain dry: no further parked admissions, occupancy steps down.
        let mut drains = 0usize;
        while p.occupied() > 0 {
            prop_assert_eq!(p.drain(), None);
            drains += 1;
        }
        prop_assert_eq!(drains, capacity);
        prop_assert_eq!(p.lost(), 0);
        prop_assert_eq!(p.rejected_deposits(), 0);
        Ok(())
    });
}

/// Rv quantile inverts the cdf for every family and parameter choice.
#[test]
fn quantile_inverts_cdf() {
    check("quantile_inverts_cdf", |g| {
        let mean = g.f64_in(1.0, 1e5);
        let cv = g.f64_in(0.05, 3.0);
        let p = g.f64_in(0.001, 0.999);
        for rv in [
            Rv::exp(mean),
            Rv::lognormal_mean_std(mean, mean * cv),
            Rv::weibull(0.5 + cv, mean),
        ] {
            let x = rv.quantile(p);
            prop_assert!((rv.cdf(x) - p).abs() < 1e-6, "{rv:?} p={p}");
        }
        Ok(())
    });
}

/// Samples from any Rv are non-negative and finite.
#[test]
fn samples_are_physical() {
    check("samples_are_physical", |g| {
        let seed = g.u64_in(0, u64::MAX);
        let mean = g.f64_in(1.0, 1e6);
        let mut rng = SplitMix64(seed);
        for rv in [Rv::exp(mean), Rv::lognormal_mean_std(mean, mean)] {
            for _ in 0..100 {
                let x = rv.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0);
            }
        }
        Ok(())
    });
}

/// Tally: merging arbitrary partitions equals bulk accumulation.
#[test]
fn tally_merge_is_partition_invariant() {
    check("tally_merge_is_partition_invariant", |g| {
        let xs = g.vec_f64(2, 100, -1e6, 1e6);
        let split = g.usize_in(1, 99).min(xs.len() - 1);
        let mut bulk = Tally::new();
        for &x in &xs {
            bulk.record(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for &x in &xs[..split] {
            a.record(x);
        }
        for &x in &xs[split..] {
            b.record(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), bulk.count());
        prop_assert!((a.mean() - bulk.mean()).abs() < 1e-6 * (1.0 + bulk.mean().abs()));
        prop_assert!((a.variance() - bulk.variance()).abs() < 1e-5 * (1.0 + bulk.variance()));
        Ok(())
    });
}

/// 2^k factorial: explained percentages always total 100.
#[test]
fn factorial_variation_totals_hundred() {
    check("factorial_variation_totals_hundred", |g| {
        let ys = g.vec_f64(8, 9, 0.0, 1e3);
        let reps = g.vec_f64(8, 9, 0.0, 10.0);
        let mut d = Design2kr::new(vec!["a", "b", "c"]);
        let mut nontrivial = false;
        for cfg in 0..8usize {
            let base = ys[cfg];
            let jitter = reps[cfg];
            d.set_responses(cfg, vec![base, base + jitter]);
            if base != 0.0 || jitter != 0.0 {
                nontrivial = true;
            }
        }
        prop_assume!(nontrivial);
        let v = d.analyze();
        let total: f64 = v.terms.iter().map(|t| t.pct).sum::<f64>() + v.sse_pct;
        prop_assert!((total - 100.0).abs() < 1e-6 || v.sst == 0.0);
        for t in &v.terms {
            prop_assert!(t.pct >= -1e-12);
        }
        Ok(())
    });
}

/// Trace codec: arbitrary records survive a write/read round trip.
#[test]
fn trace_codec_roundtrip() {
    check("trace_codec_roundtrip", |g| {
        let classes = ProcessClass::ALL;
        let records: Vec<TraceRecord> = g.vec_of(1, 50, |g| {
            let t = g.f64_in(0.0, 1e9);
            let pid = g.u64_in(0, 64) as u32;
            let class = *g.choice(&classes);
            let is_cpu = g.bool();
            let occ = g.f64_in(0.001, 1e7);
            TraceRecord {
                t_us: (t * 1e3).round() / 1e3,
                pid,
                class,
                resource: if is_cpu { Resource::Cpu } else { Resource::Network },
                occupancy_us: (occ * 1e3).round() / 1e3,
            }
        });
        let t = Trace::from_records(records);
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("write");
        let t2 = Trace::read_from(&buf[..]).expect("read");
        prop_assert_eq!(t.len(), t2.len());
        for (a, b) in t.records().iter().zip(t2.records()) {
            prop_assert_eq!(a.class, b.class);
            prop_assert_eq!(a.resource, b.resource);
            prop_assert_eq!(a.pid, b.pid);
            prop_assert!((a.t_us - b.t_us).abs() < 5e-4);
            prop_assert!((a.occupancy_us - b.occupancy_us).abs() < 5e-4);
        }
        Ok(())
    });
}

//! Sharded-execution contracts (DESIGN.md §11): the static partition is a
//! pure function that cuts only forwarding links, and a sharded run at any
//! shard/thread count is **bit-identical** to the serial engine — same
//! metrics, same canonical state payload — with the serial engine kept as
//! the oracle.

use paradyn_core::{
    build_with_calendar, exec_cell, lookahead_ns, partition, run, run_sharded,
    run_sharded_with_lookahead, shardable, Arch, DaemonCrashFaults, FaultPlan, Forwarding,
    LinkFaults, SimConfig,
};
use paradyn_des::{CalendarKind, SimTime};

fn mpp_tree(nodes: usize) -> SimConfig {
    SimConfig {
        arch: Arch::Mpp {
            forwarding: Forwarding::BinaryTree,
        },
        nodes,
        batch: 16,
        duration_s: 2.0,
        ..Default::default()
    }
}

fn now_cf(nodes: usize) -> SimConfig {
    SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes,
        duration_s: 2.0,
        ..Default::default()
    }
}

/// Serial oracle: the ordinary engine run to the horizon.
fn serial_payload(cfg: &SimConfig, kind: CalendarKind) -> Vec<u8> {
    let mut sim = build_with_calendar(cfg, kind);
    sim.run_until(SimTime::from_secs_f64(cfg.duration_s));
    sim.state_payload()
}

#[test]
fn every_cell_lands_on_exactly_one_shard() {
    for (cfg, shards) in [
        (mpp_tree(31), 4u16),
        (mpp_tree(100), 8),
        (now_cf(10), 3),
        (now_cf(7), 16), // more shards than a balanced split needs
    ] {
        let p = partition(&cfg, shards);
        assert_eq!(p.len(), cfg.nodes, "one owner per cell, no cell skipped");
        assert!(p.iter().all(|&s| s < shards), "owner out of range");
        assert_eq!(p[0], 0, "main's node stays on shard 0");
        // Purity: same (config, shard count) -> same partition.
        assert_eq!(*p, *partition(&cfg.clone(), shards));
    }
}

#[test]
fn cross_shard_edges_are_exactly_forwarding_links() {
    // On the binary tree, walk every child -> parent forwarding link; any
    // communicating pair of cells split across shards must be one of these
    // links (the daemon's own apps, bank, and background sources share its
    // cell by construction of `exec_cell`).
    let cfg = mpp_tree(63);
    for shards in [2u16, 4, 8] {
        let p = partition(&cfg, shards);
        for child in 1..cfg.nodes as u32 {
            let parent = (child - 1) / 2;
            if p[child as usize] != p[parent as usize] {
                // Cut edge: fine, it is a forwarding link with wire time
                // >= min_forward_us — exactly the protocol's lookahead.
                continue;
            }
        }
        // Intra-cell traffic never crosses: an app's deliveries, samples,
        // and throttle ticks all map to the app's node.
        let apn = cfg.apps_per_node as u32;
        for node in 0..cfg.nodes as u32 {
            for a in node * apn..(node + 1) * apn {
                use paradyn_core::model::types::{Ev, NetJob};
                assert_eq!(exec_cell(&Ev::Sample { app: a }, apn), node);
                assert_eq!(exec_cell(&Ev::Deliver(NetJob::AppComm { app: a }), apn), node);
            }
        }
    }
}

#[test]
fn sharded_runs_match_serial_bit_for_bit() {
    let kind = CalendarKind::default_from_env();
    for cfg in [mpp_tree(31), now_cf(6)] {
        let oracle = serial_payload(&cfg, kind);
        let serial_metrics = run(&cfg);
        for shards in [1u16, 2, 4, 8] {
            let sim = run_sharded(&cfg, kind, shards, 1);
            assert_eq!(
                sim.state_payload(),
                oracle,
                "{:?} {shards} shards: state diverged from serial",
                cfg.arch
            );
            let events = sim.executed_events();
            let m = sim
                .model
                .metrics(SimTime::from_secs_f64(cfg.duration_s) - SimTime::ZERO, events);
            assert_eq!(m.events, serial_metrics.events, "{shards} shards: events");
            assert_eq!(
                m.latency_mean_s.to_bits(),
                serial_metrics.latency_mean_s.to_bits(),
                "{shards} shards: latency"
            );
            assert_eq!(
                m.pd_cpu_per_node_s.to_bits(),
                serial_metrics.pd_cpu_per_node_s.to_bits(),
                "{shards} shards: pd cpu"
            );
        }
    }
}

#[test]
fn sharded_runs_match_serial_under_faults() {
    // Crashes, link failures, and flush timers all stay within their
    // daemon's cell; the merged state must still equal the serial oracle.
    let mut cfg = mpp_tree(15);
    cfg.faults = FaultPlan {
        daemon_crash: Some(DaemonCrashFaults {
            mtbf_us: 300_000.0,
            recovery_us: 50_000.0,
        }),
        link: Some(LinkFaults {
            fail_prob: 0.05,
            max_retries: 3,
            backoff_base_us: 500.0,
        }),
        ..Default::default()
    };
    cfg.batch_timeout_us = Some(20_000.0);
    let kind = CalendarKind::default_from_env();
    let oracle = serial_payload(&cfg, kind);
    for shards in [2u16, 4] {
        let sim = run_sharded(&cfg, kind, shards, 1);
        assert_eq!(
            sim.state_payload(),
            oracle,
            "{shards} shards diverged under fault injection"
        );
    }
}

#[test]
fn shard_and_thread_counts_compose() {
    // threads <= 1 runs the window protocol round-robin on the calling
    // thread; one OS thread per shard must give the same bits.
    let cfg = mpp_tree(31);
    let kind = CalendarKind::default_from_env();
    let oracle = serial_payload(&cfg, kind);
    for shards in [2u16, 4] {
        for threads in [1usize, shards as usize] {
            let sim = run_sharded(&cfg, kind, shards, threads);
            assert_eq!(
                sim.state_payload(),
                oracle,
                "{shards} shards x {threads} threads diverged"
            );
        }
    }
}

#[test]
fn both_calendars_agree_when_sharded() {
    let cfg = mpp_tree(15);
    let wheel = run_sharded(&cfg, CalendarKind::Wheel, 4, 1);
    let heap = run_sharded(&cfg, CalendarKind::Heap, 4, 1);
    assert_eq!(
        wheel.state_payload(),
        heap.state_payload(),
        "calendar backends diverged under sharding"
    );
}

#[test]
fn inflated_lookahead_is_caught_by_the_oracle() {
    // Mutation self-check: claim far more lookahead than the model's real
    // forwarding floor. The windows become unsound, the driver must count
    // violations, and the differential oracle must flag the trace.
    let cfg = mpp_tree(31);
    let kind = CalendarKind::default_from_env();
    let honest = lookahead_ns(&cfg);
    let (sim, violations) = run_sharded_with_lookahead(&cfg, kind, 4, 1, honest * 20_000);
    assert!(
        violations > 0,
        "inflated lookahead produced no violations — the mutation hook is dead"
    );
    assert_ne!(
        sim.state_payload(),
        serial_payload(&cfg, kind),
        "violating run still matched the oracle — divergence not detectable"
    );
}

#[test]
fn unshardable_configs_are_refused() {
    assert!(!shardable(&SimConfig::default()));
    let result = std::panic::catch_unwind(|| {
        run_sharded(
            &SimConfig::default(),
            CalendarKind::default_from_env(),
            2,
            1,
        )
    });
    assert!(result.is_err(), "shared-medium config must be rejected");
}

#[test]
fn run_honors_paradyn_shards_semantics() {
    // `run` routes through the sharded driver only for shardable
    // configurations; either way the metrics equal the serial engine's.
    let cfg = mpp_tree(15);
    let serial = run(&cfg);
    let sim = run_sharded(&cfg, CalendarKind::default_from_env(), 4, 1);
    let events = sim.executed_events();
    let m = sim
        .model
        .metrics(SimTime::from_secs_f64(cfg.duration_s) - SimTime::ZERO, events);
    assert_eq!(serial.events, m.events);
    assert_eq!(serial.received_samples, m.received_samples);
    assert_eq!(
        serial.throughput_per_s.to_bits(),
        m.throughput_per_s.to_bits()
    );
}

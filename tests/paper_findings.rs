//! Integration tests asserting the paper's headline findings hold in the
//! simulation — the "shape" contract of the reproduction (DESIGN.md §4).

use paradyn_core::{run, Arch, Forwarding, SimConfig};
use paradyn_workload::pvmbt;

fn now_cfree(duration_s: f64) -> SimConfig {
    SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        duration_s,
        ..Default::default()
    }
}

#[test]
fn bf_cuts_daemon_overhead_by_more_than_sixty_percent() {
    // The paper's central result (Sections 4.5, 5): BF(32) vs CF at a
    // demanding sampling rate.
    let base = SimConfig {
        sampling_period_us: 5_000.0,
        ..now_cfree(8.0)
    };
    let cf = run(&base);
    let bf = run(&SimConfig { batch: 32, ..base });
    let reduction = 1.0 - bf.pd_cpu_per_node_s / cf.pd_cpu_per_node_s;
    assert!(
        reduction > 0.60,
        "BF reduction {:.2} (cf={}, bf={})",
        reduction,
        cf.pd_cpu_per_node_s,
        bf.pd_cpu_per_node_s
    );
    // And the main process benefits at least as much.
    assert!(bf.main_cpu_util < 0.5 * cf.main_cpu_util);
    // While delivering the same samples.
    let ratio = bf.received_samples as f64 / cf.received_samples as f64;
    assert!((0.9..1.1).contains(&ratio), "throughput parity {ratio}");
}

#[test]
fn cf_forwards_every_sample_individually() {
    // CF is BF(1): one forward operation per sample (design decision 3).
    let m = run(&now_cfree(4.0));
    assert_eq!(m.forwarded_batches, m.forwarded_samples);
    // Under BF(32), operations are ~1/32 of samples.
    let bf = run(&SimConfig {
        batch: 32,
        ..now_cfree(4.0)
    });
    assert!(bf.forwarded_batches * 25 < bf.forwarded_samples);
}

#[test]
fn daemon_overhead_scales_with_sampling_rate_not_nodes() {
    // Figure 18(a): per-node overhead flat in node count;
    // Figure 18(b): inverse in the sampling period.
    let n2 = run(&SimConfig { nodes: 2, ..now_cfree(6.0) });
    let n32 = run(&SimConfig { nodes: 32, ..now_cfree(6.0) });
    let rel = (n2.pd_cpu_util_per_node - n32.pd_cpu_util_per_node).abs()
        / n2.pd_cpu_util_per_node;
    assert!(rel < 0.25, "per-node overhead drifted {rel} across node counts");

    let fast = run(&SimConfig {
        sampling_period_us: 5_000.0,
        ..now_cfree(6.0)
    });
    let slow = run(&SimConfig {
        sampling_period_us: 40_000.0,
        ..now_cfree(6.0)
    });
    let ratio = fast.pd_cpu_util_per_node / slow.pd_cpu_util_per_node;
    assert!((5.0..12.0).contains(&ratio), "expected ~8x, got {ratio}");
}

#[test]
fn main_process_load_grows_with_node_count() {
    // Figure 18(a): Paradyn CPU utilization rises with nodes under CF.
    let n4 = run(&SimConfig { nodes: 4, ..now_cfree(6.0) });
    let n32 = run(&SimConfig { nodes: 32, ..now_cfree(6.0) });
    assert!(n32.main_cpu_util > 4.0 * n4.main_cpu_util);
}

#[test]
fn tree_forwarding_costs_daemon_cpu_but_relieves_the_main_process() {
    // Figure 27 + eq. 14.
    let direct = run(&SimConfig {
        arch: Arch::Mpp {
            forwarding: Forwarding::Direct,
        },
        nodes: 64,
        batch: 32,
        duration_s: 6.0,
        ..Default::default()
    });
    let tree = run(&SimConfig {
        arch: Arch::Mpp {
            forwarding: Forwarding::BinaryTree,
        },
        nodes: 64,
        batch: 32,
        duration_s: 6.0,
        ..Default::default()
    });
    assert!(tree.pd_cpu_util_per_node > direct.pd_cpu_util_per_node);
    // Same data reaches the main process either way.
    let ratio = tree.received_samples as f64 / direct.received_samples as f64;
    assert!((0.9..1.1).contains(&ratio), "delivery parity {ratio}");
}

#[test]
fn small_sampling_periods_fill_pipes_and_block_the_application() {
    // Figure 23's mechanism on the SMP.
    let smp = SimConfig {
        arch: Arch::Smp,
        nodes: 16,
        apps_per_node: 32,
        duration_s: 6.0,
        ..Default::default()
    };
    let fast = run(&SimConfig {
        sampling_period_us: 2_000.0,
        ..smp.clone()
    });
    let slow = run(&SimConfig {
        sampling_period_us: 40_000.0,
        ..smp.clone()
    });
    assert!(fast.blocked_deposits > 100, "expected heavy pipe blocking");
    assert_eq!(slow.blocked_deposits, 0, "40 ms must not block");
    assert!(fast.app_cpu_util_per_node < slow.app_cpu_util_per_node);
    // Extra daemons raise the drain rate, admitting more samples (note:
    // `blocked_deposits` counts blocking *events*, which can rise when
    // writers unblock faster — throughput is the monotone signal).
    let fast4 = run(&SimConfig {
        sampling_period_us: 2_000.0,
        pds: 4,
        ..smp
    });
    assert!(fast4.throughput_per_s > fast.throughput_per_s);
    assert!(fast4.generated_samples > fast.generated_samples);
}

#[test]
fn smp_one_daemon_suffices_under_bf() {
    // Figure 21 / Section 4.3.2.
    let smp = SimConfig {
        arch: Arch::Smp,
        nodes: 16,
        apps_per_node: 32,
        duration_s: 6.0,
        ..Default::default()
    };
    let offered = 32.0 / 0.040;
    let bf1 = run(&SimConfig {
        batch: 32,
        ..smp.clone()
    });
    assert!(
        bf1.throughput_per_s > 0.9 * offered,
        "BF one-daemon throughput {} vs offered {offered}",
        bf1.throughput_per_s
    );
    // CF with one daemon falls short; daemons help.
    let cf1 = run(&smp.clone());
    let cf4 = run(&SimConfig { pds: 4, ..smp });
    assert!(cf1.throughput_per_s < 0.9 * offered);
    assert!(cf4.throughput_per_s > cf1.throughput_per_s);
}

#[test]
fn frequent_barriers_idle_the_app_and_raise_is_share() {
    // Figure 28.
    let base = SimConfig {
        arch: Arch::Mpp {
            forwarding: Forwarding::Direct,
        },
        nodes: 64,
        batch: 32,
        duration_s: 6.0,
        ..Default::default()
    };
    let none = run(&base);
    let mut busy = base.clone();
    busy.app = pvmbt().with_barriers(1_000.0); // 1 ms of work per barrier
    let frequent = run(&busy);
    assert!(frequent.barrier_ops > 50, "barriers fired {}", frequent.barrier_ops);
    assert!(frequent.app_cpu_util_per_node < 0.6 * none.app_cpu_util_per_node);
    assert!(frequent.pd_cpu_util_per_node > none.pd_cpu_util_per_node);
    // Latency is not materially affected (paper's finding).
    assert!(frequent.fwd_latency_mean_s < 10.0 * none.fwd_latency_mean_s);
}

#[test]
fn uninstrumented_baseline_has_zero_is_activity() {
    let m = run(&SimConfig {
        instrumented: false,
        ..now_cfree(4.0)
    });
    assert_eq!(m.generated_samples, 0);
    assert_eq!(m.received_samples, 0);
    assert_eq!(m.pd_cpu_per_node_s, 0.0);
    assert_eq!(m.main_cpu_util, 0.0);
    // And the application runs at least as fast as when instrumented.
    let instr = run(&now_cfree(4.0));
    assert!(m.app_cpu_util_per_node >= instr.app_cpu_util_per_node - 1e-9);
}

#[test]
fn batch_size_knee_levels_off() {
    // Figure 19: 1 -> 8 is a big win; 32 -> 64 is not. Run below daemon
    // saturation (one app per node, 5 ms sampling) so utilization, not
    // throttled throughput, is measured.
    let base = SimConfig {
        sampling_period_us: 5_000.0,
        apps_per_node: 1,
        ..now_cfree(8.0)
    };
    let u = |b: usize| {
        run(&SimConfig {
            batch: b,
            ..base.clone()
        })
        .pd_cpu_util_per_node
    };
    let (u1, u8, u32, u64_) = (u(1), u(8), u(32), u(64));
    assert!(u1 / u8 > 2.0, "1->8 gain {:.2}", u1 / u8);
    assert!(u32 / u64_ < 1.5, "32->64 gain {:.2}", u32 / u64_);
    assert!(u8 > u32, "monotone decrease expected");
}

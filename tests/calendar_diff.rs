//! Differential property tests: the timing-wheel calendar must be
//! observationally identical to the binary-heap oracle — same `(time,
//! event)` trace (including tie order), same executed/pending counts, and
//! no slab residue after a full drain — under random schedule/cancel/run
//! sequences spanning every wheel level.
//!
//! Runs on the in-tree `paradyn_stats::check` harness. Rerun a reported
//! failure with `PARADYN_PROP_SEED=<seed> cargo test <property name>`.

use paradyn_des::{CalendarKind, Ctx, EventHandle, Model, Sim, SimDur, SimTime};
use paradyn_stats::{check, prop_assert, prop_assert_eq};

/// Records every delivered event with its firing time.
struct Recorder {
    trace: Vec<(u64, u32)>,
}

impl Model for Recorder {
    type Event = u32;
    fn handle(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
        self.trace.push((ctx.now().as_nanos(), ev));
    }
}

/// One generated operation, applied identically to both backends.
enum Op {
    /// Schedule at `now + delay`; the returned handle is retained.
    Schedule { delay: u64, ev: u32 },
    /// Cancel the `idx % handles.len()`-th retained handle (possibly
    /// stale: already fired or already cancelled).
    Cancel { idx: usize },
    /// Advance the clock by `dur` (a horizon stop, not an event).
    Run { dur: u64 },
}

/// Delay scales that exercise placement at distinct wheel levels, from the
/// staged/due fast path (0–63 ns) up past the 1 << 36 overflow levels.
const SCALES: [u64; 6] = [1, 64, 4096, 262_144, 1 << 24, 1 << 36];

fn gen_ops(g: &mut paradyn_stats::Gen) -> Vec<Op> {
    let n = g.usize_in(1, 120);
    (0..n)
        .map(|_| match g.u64_in(0, 9) {
            0..=5 => Op::Schedule {
                // Scaled so ties (delay 0 and equal delays) are common.
                delay: g.u64_in(0, 8) * SCALES[g.index(SCALES.len())],
                ev: g.u64_in(0, u32::MAX as u64) as u32,
            },
            6..=7 => Op::Cancel {
                idx: g.usize_in(0, 4096),
            },
            _ => Op::Run {
                dur: g.u64_in(0, 4) * SCALES[g.index(SCALES.len())],
            },
        })
        .collect()
}

/// Drive one backend through `ops`, then drain it completely.
fn drive(kind: CalendarKind, ops: &[Op]) -> Sim<Recorder> {
    let mut sim = Sim::with_calendar(Recorder { trace: vec![] }, kind);
    let mut handles: Vec<EventHandle> = vec![];
    for op in ops {
        match *op {
            Op::Schedule { delay, ev } => {
                let h = sim.ctx().schedule_in(SimDur::from_nanos(delay), ev);
                handles.push(h);
            }
            Op::Cancel { idx } => {
                if !handles.is_empty() {
                    let h = handles[idx % handles.len()];
                    sim.ctx().cancel(h);
                }
            }
            Op::Run { dur } => {
                let horizon = sim.now() + SimDur::from_nanos(dur);
                sim.run_until(horizon);
            }
        }
    }
    sim.run_until(SimTime::MAX);
    sim
}

/// The wheel and the heap produce bit-identical `(time, event)` traces —
/// including tie order — and agree on every observable counter.
#[test]
fn wheel_matches_heap_oracle() {
    check("wheel_matches_heap_oracle", |g| {
        let ops = gen_ops(g);
        let wheel = drive(CalendarKind::Wheel, &ops);
        let heap = drive(CalendarKind::Heap, &ops);
        prop_assert_eq!(&wheel.model.trace, &heap.model.trace);
        prop_assert_eq!(wheel.executed_events(), heap.executed_events());
        Ok(())
    });
}

/// After a full drain both backends report zero pending events and have
/// recycled every slab slot — cancellation leaves no residue.
#[test]
fn drained_calendars_have_no_residue() {
    check("drained_calendars_have_no_residue", |g| {
        let ops = gen_ops(g);
        for kind in [CalendarKind::Wheel, CalendarKind::Heap] {
            let mut sim = drive(kind, &ops);
            prop_assert_eq!(sim.ctx().pending_events(), 0);
            let s = sim.ctx().calendar_stats();
            prop_assert_eq!(s.live, 0);
            prop_assert!(s.cancelled_pending == 0, "cancelled entries left behind");
            prop_assert!(s.slab_free == s.slab_slots, "leaked slab slots");
            prop_assert!(
                kind == CalendarKind::Heap || s.occupied_buckets == 0,
                "drained wheel still has occupied buckets"
            );
        }
        Ok(())
    });
}

/// `pending_events` is exact at every intermediate point: it equals the
/// number of scheduled-but-unfired events minus effective cancellations,
/// tracked by a reference count alongside the real calendar.
#[test]
fn pending_count_matches_reference() {
    check("pending_count_matches_reference", |g| {
        let ops = gen_ops(g);
        #[derive(PartialEq, Clone, Copy)]
        enum St {
            Pending,
            Cancelled,
            Fired,
        }
        for kind in [CalendarKind::Wheel, CalendarKind::Heap] {
            let mut sim = Sim::with_calendar(Recorder { trace: vec![] }, kind);
            let mut handles: Vec<EventHandle> = vec![];
            let mut state: Vec<St> = vec![];
            for op in &ops {
                match *op {
                    Op::Schedule { delay, .. } => {
                        // Event payload = handle index, so the trace tells
                        // us exactly which schedules fired.
                        let ev = handles.len() as u32;
                        handles.push(sim.ctx().schedule_in(SimDur::from_nanos(delay), ev));
                        state.push(St::Pending);
                    }
                    Op::Cancel { idx } => {
                        if !handles.is_empty() {
                            let k = idx % handles.len();
                            sim.ctx().cancel(handles[k]);
                            // A cancel only takes effect on a pending event;
                            // on fired/cancelled handles it is a stale no-op.
                            if state[k] == St::Pending {
                                state[k] = St::Cancelled;
                            }
                        }
                    }
                    Op::Run { dur } => {
                        let horizon = sim.now() + SimDur::from_nanos(dur);
                        sim.run_until(horizon);
                        for &(_, ev) in &sim.model.trace {
                            state[ev as usize] = St::Fired;
                        }
                    }
                }
                let expect = state.iter().filter(|&&s| s == St::Pending).count();
                prop_assert!(
                    sim.ctx().pending_events() == expect,
                    "{:?}: pending_events {} != reference {}",
                    kind,
                    sim.ctx().pending_events(),
                    expect
                );
            }
        }
        Ok(())
    });
}

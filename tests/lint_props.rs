//! Property-based tests on the lint crate's lexer and item parser,
//! running on the in-tree `paradyn_stats::check` harness. The lint gate
//! runs on every source file in the workspace, so the front end must be
//! total: no input — valid Rust, truncated Rust, or random bytes — may
//! panic it, and the token/item spans it reports must actually describe
//! the file (tests/lint_clean.rs depends on line/col findings pointing at
//! real code). Rerun a reported failure with
//! `PARADYN_PROP_SEED=<seed> cargo test <property name>`.

use paradyn_lint::lexer::{tokenize, TokKind};
use paradyn_lint::parse::{parse_items, Item};
use paradyn_lint::source::SourceFile;
use paradyn_stats::check::Failure;
use paradyn_stats::{check, Gen, PropResult};
use paradyn_stats::{prop_assert, prop_assert_eq};

/// Adversarial inputs distilled from lexer/parser edge cases: unclosed
/// delimiters, raw strings, nested comments, truncation mid-token, byte
/// order marks of trouble. Every property runs over these in addition to
/// its random inputs.
const ADVERSARIAL: &[&str] = &[
    "",
    "{",
    "}}}",
    "struct",
    "struct S {",
    "struct S { a: u64,",
    "impl Persist for",
    "fn f(",
    "r#\"unterminated raw",
    "\"unterminated string",
    "'a",
    "'\\''",
    "/* nested /* comment */",
    "// line comment with no newline",
    "#[attr(unclosed",
    "macro_rules! m { ($x:expr) => { struct Inside; } }",
    "mod a { mod b { mod c { fn deep() { } ",
    "enum E { A(",
    "pub pub pub",
    "impl<T: Iterator<Item = (u8, u8)>> X for Y {}",
    "use ::std::io;",
    "let s = \"struct Fake { x: u8 }\";",
    "型 struct 名 { ﬁeld: u64 }",
    "\u{0}\u{1}\u{2}struct S{a:u8}\u{3}",
];

/// A random source string: either raw lossy-UTF8 bytes, or a shuffle of
/// Rust-ish fragments that keeps the parser in interesting territory.
fn random_source(g: &mut Gen) -> Result<String, Failure> {
    if g.bool() {
        let bytes = g.vec_u64(0, 300, 0, 255);
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        Ok(String::from_utf8_lossy(&raw).into_owned())
    } else {
        const FRAGMENTS: &[&str] = &[
            "struct S", "{", "}", "(", ")", "a: u64", ",", ";", "impl", "Persist",
            "for", "fn f", "pub", "#[derive(Debug)]", "//x\n", "/*y*/", "\"s\"",
            "'c'", "r#\"raw\"#", "mod m", "enum E", "trait T", "<T>", "where",
            "unsafe", "const C: u8 = 1", "macro_rules! m", "$crate", "::", "\n",
            " ", "0x1f", "1.5e3", "'lifetime", "型",
        ];
        let n = g.usize_in(0, 60);
        let mut s = String::new();
        for _ in 0..n {
            s.push_str(FRAGMENTS[g.index(FRAGMENTS.len())]);
            s.push(' ');
        }
        Ok(s)
    }
}

/// Token spans tile the file: in-bounds, strictly ordered, non-overlapping,
/// on char boundaries, and the gaps between them are whitespace only.
fn assert_tokens_tile(src: &str) -> PropResult {
    let toks = tokenize(src);
    let mut prev_end = 0usize;
    for t in &toks {
        prop_assert!(t.start < t.end, "empty token span {}..{}", t.start, t.end);
        prop_assert!(t.end <= src.len(), "span {}..{} out of bounds", t.start, t.end);
        prop_assert!(t.start >= prev_end, "overlap at {}", t.start);
        prop_assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "span {}..{} splits a char",
            t.start,
            t.end
        );
        prop_assert!(
            src[prev_end..t.start].chars().all(char::is_whitespace),
            "non-whitespace gap {:?} before token at {}",
            &src[prev_end..t.start],
            t.start
        );
        prev_end = t.end;
    }
    prop_assert!(
        src[prev_end..].chars().all(char::is_whitespace),
        "non-whitespace tail {:?}",
        &src[prev_end..]
    );
    Ok(())
}

/// Item spans are in-bounds and properly nested: every child's byte span
/// sits inside its parent's, siblings are ordered and disjoint, and fn
/// body token ranges index real significant tokens.
fn assert_items_nest(file: &SourceFile) -> PropResult {
    fn walk(
        items: &[Item],
        lo: usize,
        hi: usize,
        sig_len: usize,
        text_len: usize,
    ) -> PropResult {
        let mut prev_end = lo;
        for it in items {
            prop_assert!(
                it.start <= it.end && it.end <= text_len,
                "item `{}` span {}..{} out of bounds",
                it.name,
                it.start,
                it.end
            );
            prop_assert!(
                it.start >= lo && it.end <= hi,
                "item `{}` {}..{} escapes container {}..{}",
                it.name,
                it.start,
                it.end,
                lo,
                hi
            );
            prop_assert!(
                it.start >= prev_end,
                "item `{}` overlaps its predecessor",
                it.name
            );
            if let Some((blo, bhi)) = it.body {
                prop_assert!(blo <= bhi && bhi <= sig_len, "body range out of bounds");
            }
            walk(&it.children, it.start, it.end, sig_len, text_len)?;
            prev_end = it.end;
        }
        Ok(())
    }
    let items = parse_items(file);
    walk(&items, 0, file.text.len(), file.sig.len(), file.text.len())
}

/// The lexer is total and its spans tile the input, on random byte soup,
/// Rust-ish fragment shuffles, and the adversarial corpus.
#[test]
fn lexer_never_panics_and_spans_tile() {
    for src in ADVERSARIAL {
        assert_tokens_tile(src).unwrap();
    }
    check("lexer_never_panics_and_spans_tile", |g| {
        let src = random_source(g)?;
        assert_tokens_tile(&src)
    });
}

/// The item parser is total and produces properly nested, in-bounds item
/// trees on the same input classes.
#[test]
fn parser_never_panics_and_items_nest() {
    for src in ADVERSARIAL {
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_string());
        assert_items_nest(&f).unwrap();
    }
    check("parser_never_panics_and_items_nest", |g| {
        let src = random_source(g)?;
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_items_nest(&f)
    });
}

/// Lexing is deterministic and pure: the same input yields the same token
/// stream, and significant-token filtering never invents tokens.
#[test]
fn lexer_is_deterministic_and_sig_is_a_subset() {
    check("lexer_is_deterministic_and_sig_is_a_subset", |g| {
        let src = random_source(g)?;
        let a = tokenize(&src);
        let b = tokenize(&src);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!((x.start, x.end), (y.start, y.end));
        }
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        for &i in &f.sig {
            prop_assert!(i < f.tokens.len(), "sig index {} out of range", i);
            let k = f.tokens[i].kind;
            prop_assert!(
                !matches!(k, TokKind::LineComment | TokKind::BlockComment),
                "comment token in significant stream"
            );
        }
        Ok(())
    });
}

//! Tier-1 gate: the workspace must be lint-clean at HEAD.
//!
//! Runs `paradyn-lint` in-process over the whole workspace and fails on any
//! non-baselined finding, validates the machine-readable report against the
//! `paradyn.lint.v1` schema using the in-tree JSON parser, and proves the
//! rules still bite by linting seeded violations through `lint_source`.

use paradyn_bench::json::Json;
use paradyn_lint::{lint_source, run, Options, MARKERS, RULES};
use std::path::Path;

fn workspace_report() -> paradyn_lint::Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf();
    run(&Options {
        root,
        baseline: None, // defaults to <root>/lint-baseline.txt
    })
    .expect("lint run")
}

#[test]
fn workspace_has_zero_non_baselined_findings() {
    let report = workspace_report();
    assert!(
        report.clean(),
        "paradyn-lint found violations at HEAD:\n{}",
        report.human()
    );
    // Sanity: the walk actually visited the workspace, not an empty dir.
    assert!(
        report.files_scanned > 50,
        "only {} files scanned — wrong root?",
        report.files_scanned
    );
    // The stream-id registry must have been discovered (rule 4 is vacuous
    // without it) and must contain the documented fault streams.
    let fault_ids: Vec<u64> = report
        .stream_registry
        .iter()
        .filter(|e| e.name.starts_with("FAULT_"))
        .map(|e| e.id)
        .collect();
    assert_eq!(fault_ids, vec![11, 12, 13], "fault stream registry drifted");
    // Same for the controller and chaos allocations (DESIGN.md §9).
    let ctrl_ids: Vec<u64> = report
        .stream_registry
        .iter()
        .filter(|e| e.name.starts_with("CTRL_"))
        .map(|e| e.id)
        .collect();
    assert_eq!(ctrl_ids, vec![14, 15], "controller stream registry drifted");
    let chaos_ids: Vec<u64> = report
        .stream_registry
        .iter()
        .filter(|e| e.name.starts_with("CHAOS_"))
        .map(|e| e.id)
        .collect();
    assert_eq!(chaos_ids, vec![16], "chaos stream registry drifted");
    // And the shard allocation (DESIGN.md §11).
    let shard_ids: Vec<u64> = report
        .stream_registry
        .iter()
        .filter(|e| e.name.starts_with("SHARD_"))
        .map(|e| e.id)
        .collect();
    assert_eq!(shard_ids, vec![17], "shard stream registry drifted");
}

#[test]
fn json_report_matches_schema_v1() {
    let report = workspace_report();
    let json = Json::parse(&report.to_json()).expect("lint JSON must parse");
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some("paradyn.lint.v1")
    );
    assert_eq!(
        json.get("files_scanned").and_then(Json::as_num),
        Some(report.files_scanned as f64)
    );
    // The embedded registries must match the compiled-in ones name-for-name
    // (`--explain` and check_lint_json read the same tables).
    let rules = json.get("rules").and_then(Json::as_arr).expect("rules[]");
    assert_eq!(rules.len(), RULES.len());
    for (r, (name, _)) in rules.iter().zip(RULES) {
        assert_eq!(r.get("name").and_then(Json::as_str), Some(*name));
        assert!(r.get("description").and_then(Json::as_str).is_some());
    }
    let markers = json.get("markers").and_then(Json::as_arr).expect("markers[]");
    assert_eq!(markers.len(), MARKERS.len());
    for (m, (name, _)) in markers.iter().zip(MARKERS) {
        assert_eq!(m.get("name").and_then(Json::as_str), Some(*name));
        assert!(m.get("description").and_then(Json::as_str).is_some());
    }
    let findings = json
        .get("findings")
        .and_then(Json::as_arr)
        .expect("findings[]");
    assert_eq!(findings.len(), report.findings.len());
    assert!(json.get("suppressed").and_then(Json::as_num).is_some());
    assert!(json.get("baselined").and_then(Json::as_arr).is_some());
    let registry = json
        .get("stream_registry")
        .and_then(Json::as_arr)
        .expect("stream_registry[]");
    assert_eq!(registry.len(), report.stream_registry.len());
    assert_eq!(json.get("clean"), Some(&Json::Bool(report.clean())));
}

/// Each rule must still fire on a seeded violation — guards against the
/// engine silently going blind (e.g. a lexer regression that swallows the
/// tokens a rule matches on).
#[test]
fn seeded_violations_are_caught() {
    let crates: Vec<String> = ["paradyn_core", "paradyn_des"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cases: &[(&str, &str, &str)] = &[
        (
            "wall-clock",
            "crates/des/src/lib.rs",
            "pub fn sneaky() -> std::time::Instant { std::time::Instant::now() }",
        ),
        (
            "unordered-iteration",
            "crates/core/src/model/mod.rs",
            "use std::collections::HashMap;\npub fn m() -> HashMap<u32, u32> { HashMap::new() }",
        ),
        (
            "panic-path",
            "crates/des/src/engine.rs",
            "pub fn pop(v: &mut Vec<u32>) -> u32 { v.pop().unwrap() }",
        ),
        (
            "panic-path",
            "crates/des/src/snapshot.rs",
            "pub fn first(v: &[u8]) -> u8 { *v.first().expect(\"non-empty\") }",
        ),
        (
            "rng-stream-id",
            "crates/des/src/engine.rs",
            "pub fn r(s: &paradyn_des::rng::Streams) -> u64 { s.stream(42).next_u64() }",
        ),
        (
            // A raw literal colliding with the controller allocation.
            "rng-stream-id",
            "crates/des/src/engine.rs",
            "pub fn r(s: &paradyn_des::rng::Streams) -> u64 { s.stream3(14, 0, 0).next_u64() }",
        ),
        (
            // New controller/chaos code paths are on the panic-path rule.
            "panic-path",
            "crates/core/src/model/degrade.rs",
            "pub fn f(v: &[u8]) -> u8 { *v.first().unwrap() }",
        ),
        (
            "panic-path",
            "src/chaos.rs",
            "pub fn f(v: &[u8]) -> u8 { *v.first().expect(\"non-empty\") }",
        ),
        (
            // The sharded window driver is on the panic-path rule too.
            "panic-path",
            "crates/des/src/shard.rs",
            "pub fn f(v: &[u8]) -> u8 { *v.first().unwrap() }",
        ),
        (
            "hermeticity",
            "crates/core/src/lib.rs",
            "use serde::Serialize;\npub fn f() {}",
        ),
        (
            // Per-event allocation seeded into an enrolled hot-path file.
            "hot-path-alloc",
            "crates/des/src/engine.rs",
            "pub fn deliver(evs: &[u32]) -> Vec<u32> { evs.to_vec() }",
        ),
        (
            "hot-path-alloc",
            "crates/core/src/pipe.rs",
            "pub fn push(b: &mut Vec<Vec<u8>>, s: &Vec<u8>) { b.push(s.clone()) }",
        ),
        (
            // The shard driver's per-window loop must stay allocation-free.
            "hot-path-alloc",
            "crates/des/src/shard.rs",
            "pub fn forward(evs: &[u32]) -> Vec<u32> { evs.to_vec() }",
        ),
        (
            // A Persist impl that forgets one field in `save`.
            "snapshot-completeness",
            "crates/des/src/fcfs.rs",
            "pub struct Q { depth: u64, served: u64 }\n\
             impl Persist for Q {\n\
                 fn save(&self, w: &mut Enc) { w.put_u64(self.depth); }\n\
                 fn load(r: &mut Dec) -> Result<Q, E> {\n\
                     Ok(Q { depth: r.take_u64()?, served: r.take_u64()? })\n\
                 }\n\
             }",
        ),
        (
            // An Acc counter dropped from the cross-cell merge.
            "metrics-merge-completeness",
            "crates/core/src/metrics.rs",
            "pub struct Acc { hits: u64, misses: u64 }\n\
             impl Acc { pub fn add(&mut self, o: &Acc) { self.hits += o.hits; } }",
        ),
        (
            // A ledger field missing from the conservation identity.
            "metrics-merge-completeness",
            "src/chaos.rs",
            "pub struct SimMetrics { lost_fire: u64 }\n\
             pub fn conservation_violation(m: &SimMetrics) -> Option<String> { None }",
        ),
        (
            // A cross-cell index outside the designated merge fns.
            "shard-purity",
            "crates/core/src/shard.rs",
            "pub fn sneaky_merge(m: &mut RoccModel, other: usize) { m.accs[other].barrier_ops += 1; }",
        ),
        (
            // The DES shard driver is covered too.
            "shard-purity",
            "crates/des/src/shard.rs",
            "pub fn peek(w: &Workers, s: usize) -> u64 { w.daemons.hot[s].flush_gen as u64 }",
        ),
    ];
    for (rule, rel, src) in cases {
        let findings = lint_source(rel, src, &crates);
        assert!(
            findings.iter().any(|f| f.rule == *rule),
            "seeded `{rule}` violation in {rel} was not caught; got {findings:?}"
        );
    }
}

/// The same seeded sources must NOT fire when they are legitimate: test
/// code for unordered-iteration/rng-stream-id, an allowed crate for
/// wall-clock, an unscoped file for panic-path.
#[test]
fn rules_respect_their_scopes() {
    let crates: Vec<String> = vec!["paradyn_des".to_string()];
    let ok: &[(&str, &str)] = &[
        (
            "crates/bench/src/lib.rs",
            "pub fn t() -> std::time::Instant { std::time::Instant::now() }",
        ),
        (
            "crates/core/src/model/tests.rs",
            "use std::collections::HashMap;\npub fn m() -> HashMap<u32, u32> { HashMap::new() }",
        ),
        (
            "crates/workload/src/lib.rs",
            "pub fn pop(v: &mut Vec<u32>) -> u32 { v.pop().unwrap() }",
        ),
        (
            // Allocation tokens outside the enrolled hot-path files are fine.
            "crates/core/src/model/app.rs",
            "pub fn copy(v: &[u32]) -> Vec<u32> { v.to_vec() }",
        ),
        (
            // A complete Persist impl, plus a field deliberately excluded
            // with a justified snapshot-exempt marker.
            "crates/des/src/fcfs.rs",
            "pub struct Q {\n\
                 depth: u64,\n\
                 // lint:allow(snapshot-exempt): derived from depth at load\n\
                 cached: u64,\n\
             }\n\
             impl Persist for Q {\n\
                 fn save(&self, w: &mut Enc) { w.put_u64(self.depth); }\n\
                 fn load(r: &mut Dec) -> Result<Q, E> {\n\
                     let depth = r.take_u64()?;\n\
                     Ok(Q { depth, cached: depth * 2 })\n\
                 }\n\
             }",
        ),
        (
            // Own-cell indexing and the designated merge fns are pure.
            "crates/core/src/shard.rs",
            "impl M { fn tick(&mut self) { self.accs[self.cell].x += 1; } }\n\
             pub fn absorb_models(base: &mut M, o: &M, c: usize) { base.accs[c].x += o.accs[c].x; }",
        ),
        (
            // Model-array names outside the shard drivers are unrestricted.
            "crates/core/src/model/daemon.rs",
            "pub fn peek(d: &Daemons, i: usize) -> u32 { d.hot[i].flush_gen }",
        ),
    ];
    for (rel, src) in ok {
        let findings = lint_source(rel, src, &crates);
        assert!(
            findings.is_empty(),
            "{rel}: expected no findings, got {findings:?}"
        );
    }
}

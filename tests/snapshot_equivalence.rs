//! Snapshot-equivalence differential suite: checkpoint/restore must be
//! **bitwise invisible** — running a simulation straight through and
//! running it to a snapshot point, restoring the snapshot, and continuing
//! must produce identical event traces, identical final state payloads,
//! and identical metrics, on both calendar backends (and even across
//! them), with and without active fault plans.
//!
//! Also covered here: frame corruption/version rejection at the `Sim`
//! level, the `rewind_bisect` divergence locator pinned to a seeded
//! divergence, fork-from-snapshot bit-identity against the
//! re-simulate-from-zero oracle, and the suite's own sensitivity check
//! (a perturbed RNG stream in a restored snapshot must break equivalence).
//!
//! Property tests run on the in-tree `paradyn_stats::check` harness;
//! rerun a reported failure with `PARADYN_PROP_SEED=<seed> cargo test
//! <property name>`.

use paradyn_core::{
    build_with_calendar, fork_n, run, run_forked, run_perturbed_from_zero, warm_snapshot, Arch,
    DaemonCrashFaults, DegradationConfig, FaultPlan, LinkFaults, OverflowPolicy, OverloadRamp,
    RoccModel, SimConfig,
};
use paradyn_des::{
    rewind_bisect, CalendarKind, Ctx, Dec, Enc, Model, Persist, PersistState, Sim, SimDur,
    SimTime, SnapError, StreamRng, Streams,
};
use paradyn_stats::{check, prop_assert, prop_assert_eq, Gen};

const KINDS: [CalendarKind; 2] = [CalendarKind::Wheel, CalendarKind::Heap];

// ---------------------------------------------------------------------------
// A small self-driving DES model: every event logs itself and schedules
// RNG-drawn successors across several timing-wheel levels.
// ---------------------------------------------------------------------------

struct Tracer {
    seed: u64,
    limit: u32,
    rng: StreamRng,
    emitted: u32,
    log: Vec<(u64, u32)>,
}

fn tracer_model(seed: u64, limit: u32) -> Tracer {
    Tracer {
        seed,
        limit,
        rng: Streams::new(seed).stream(0),
        emitted: 0,
        log: Vec::new(),
    }
}

fn tracer_sim(seed: u64, limit: u32, kind: CalendarKind) -> Sim<Tracer> {
    let mut sim = Sim::with_calendar(tracer_model(seed, limit), kind);
    sim.ctx().schedule_at(SimTime::ZERO, 0);
    sim
}

impl Model for Tracer {
    type Event = u32;
    fn handle(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
        self.log.push((ctx.now().as_nanos(), ev));
        // 1..=2 successors until the budget runs out; delays span wheel
        // levels from sub-slot to multi-level carry.
        let fanout = 1 + (self.rng.next_u64() % 2);
        for _ in 0..fanout {
            if self.emitted >= self.limit {
                break;
            }
            self.emitted += 1;
            let shift = self.rng.next_u64() % 30;
            let delay = self.rng.next_u64() % (1u64 << shift).max(1);
            ctx.schedule_in(SimDur::from_nanos(delay), self.emitted);
        }
    }
}

impl PersistState for Tracer {
    fn fingerprint(&self) -> u64 {
        let mut bytes = [0u8; 12];
        bytes[..8].copy_from_slice(&self.seed.to_le_bytes());
        bytes[8..].copy_from_slice(&self.limit.to_le_bytes());
        paradyn_des::fnv1a(&bytes)
    }
    fn save_state(&self, w: &mut Enc) {
        self.rng.save(w);
        w.put_u32(self.emitted);
        self.log.save(w);
    }
    fn load_state(&mut self, r: &mut Dec<'_>) -> Result<(), SnapError> {
        self.rng = Persist::load(r)?;
        self.emitted = r.take_u32()?;
        self.log = Persist::load(r)?;
        Ok(())
    }
}

/// Snapshot/restore at a random event count is invisible to a run of the
/// small DES model: same trace, same final payload — including when the
/// snapshot is restored into the *other* calendar backend.
#[test]
fn des_snapshot_restore_is_bitwise_invisible() {
    check("des_snapshot_restore_is_bitwise_invisible", |g| {
        let seed = g.u64_in(1, 1 << 48);
        let limit = g.u64_in(8, 300) as u32;
        let kind = *g.choice(&KINDS);

        let mut full = tracer_sim(seed, limit, kind);
        while full.step() {}
        let total = full.executed_events();
        prop_assert!(total >= 1);

        let split = g.u64_in(0, total);
        let mut pre = tracer_sim(seed, limit, kind);
        pre.run_events(split);
        let bytes = pre.snapshot_now();

        // Both backends snapshot identical state to identical bytes.
        let mut other = tracer_sim(
            seed,
            limit,
            match kind {
                CalendarKind::Wheel => CalendarKind::Heap,
                CalendarKind::Heap => CalendarKind::Wheel,
            },
        );
        other.run_events(split);
        prop_assert_eq!(&other.snapshot_now(), &bytes);

        // Restoring into either backend and continuing matches the
        // uninterrupted run bit-for-bit.
        for rkind in KINDS {
            let mut resumed = match Sim::restore(tracer_model(seed, limit), rkind, &bytes) {
                Ok(s) => s,
                Err(e) => {
                    prop_assert!(false, "restore failed: {e}");
                    return Ok(());
                }
            };
            prop_assert_eq!(resumed.executed_events(), split);
            while resumed.step() {}
            prop_assert_eq!(resumed.executed_events(), total);
            prop_assert_eq!(&resumed.model.log, &full.model.log);
            prop_assert_eq!(&resumed.state_payload(), &full.state_payload());
        }

        // The snapshotted run itself continues unperturbed.
        while pre.step() {}
        prop_assert_eq!(&pre.state_payload(), &full.state_payload());
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// Full-model equivalence.
// ---------------------------------------------------------------------------

fn small_cfg(g: &mut Gen) -> SimConfig {
    let arch = *g.choice(&[
        Arch::Now {
            contention_free: true,
        },
        Arch::Now {
            contention_free: false,
        },
        Arch::Smp,
    ]);
    let faults = if g.bool() {
        FaultPlan {
            daemon_crash: Some(DaemonCrashFaults {
                mtbf_us: 20_000.0,
                recovery_us: 5_000.0,
            }),
            ..Default::default()
        }
    } else {
        FaultPlan::default()
    };
    // Half the runs carry an aggressive degradation controller and an
    // early overload ramp, so snapshots land mid-throttle/mid-shed too.
    let degradation = if g.bool() {
        Some(DegradationConfig {
            tiers: 2,
            keep_tiers: 1,
            pipe_hi: 0.4,
            pipe_lo: 0.2,
            daemon_hi: 3,
            daemon_lo: 1,
            recover_period_us: 3_000.0,
            hysteresis_us: 5_000.0,
            ..Default::default()
        })
    } else {
        None
    };
    let overload = if g.bool() {
        Some(OverloadRamp {
            at_s: 0.01,
            factor: 8.0,
        })
    } else {
        None
    };
    SimConfig {
        arch,
        nodes: g.usize_in(1, 2),
        sampling_period_us: *g.choice(&[2_000.0, 10_000.0]),
        duration_s: g.f64_in(0.02, 0.05),
        seed: g.u64_in(1, 1 << 48),
        faults,
        degradation,
        overload,
        ..Default::default()
    }
}

fn final_state(cfg: &SimConfig, sim: &mut Sim<RoccModel>) -> (String, Vec<u8>) {
    let horizon = SimTime::from_secs_f64(cfg.duration_s);
    sim.run_until(horizon);
    let events = sim.executed_events();
    let metrics = sim.model.metrics(horizon - SimTime::ZERO, events);
    (format!("{metrics:?}"), sim.state_payload())
}

/// Snapshot/restore at a random simulated time is invisible to the full
/// ROCC model — final metrics and state payloads are bit-identical on both
/// backends, with and without an active fault plan.
#[test]
fn rocc_snapshot_restore_is_bitwise_invisible() {
    check("rocc_snapshot_restore_is_bitwise_invisible", |g| {
        let cfg = small_cfg(g);
        let kind = *g.choice(&KINDS);
        let horizon_ns = SimTime::from_secs_f64(cfg.duration_s).as_nanos();
        let split = SimTime::from_nanos(g.u64_in(0, horizon_ns));

        let mut full = build_with_calendar(&cfg, kind);
        let (full_metrics, full_payload) = final_state(&cfg, &mut full);

        let mut pre = build_with_calendar(&cfg, kind);
        let bytes = match pre.snapshot(split) {
            Ok(b) => b,
            Err(e) => {
                prop_assert!(false, "snapshot failed: {e}");
                return Ok(());
            }
        };
        let mut resumed = match Sim::restore(RoccModel::new(cfg.clone()), kind, &bytes) {
            Ok(s) => s,
            Err(e) => {
                prop_assert!(false, "restore failed: {e}");
                return Ok(());
            }
        };
        // Restore is lossless: re-snapshotting immediately reproduces the
        // frame byte-for-byte.
        prop_assert_eq!(&resumed.snapshot_now(), &bytes);

        let (res_metrics, res_payload) = final_state(&cfg, &mut resumed);
        prop_assert_eq!(&res_metrics, &full_metrics);
        prop_assert_eq!(&res_payload, &full_payload);

        // The snapshotted run continues unperturbed too.
        let (pre_metrics, pre_payload) = final_state(&cfg, &mut pre);
        prop_assert_eq!(&pre_metrics, &full_metrics);
        prop_assert_eq!(&pre_payload, &full_payload);
        Ok(())
    });
}

/// Deterministic pin: the full active fault plan (crashes, lossy links,
/// consumer stalls, lossy pipes) survives checkpoint/restore bitwise on
/// both backends, and a wheel snapshot restores into a heap calendar (and
/// vice versa) without observable effect.
#[test]
fn faulty_run_equivalence_on_both_backends() {
    let cfg = SimConfig {
        arch: Arch::Now {
            contention_free: false,
        },
        nodes: 2,
        duration_s: 0.08,
        sampling_period_us: 2_000.0,
        seed: 0xFA11,
        faults: FaultPlan {
            overflow: OverflowPolicy::DropNewest,
            daemon_crash: Some(DaemonCrashFaults {
                mtbf_us: 15_000.0,
                recovery_us: 4_000.0,
            }),
            link: Some(LinkFaults {
                fail_prob: 0.05,
                max_retries: 2,
                backoff_base_us: 100.0,
            }),
            stall: Some(Default::default()),
        },
        ..Default::default()
    };
    assert!(cfg.faults.is_active());
    let split = SimTime::from_secs_f64(0.03);

    let mut payloads = vec![];
    for kind in KINDS {
        let mut full = build_with_calendar(&cfg, kind);
        let (full_metrics, full_payload) = final_state(&cfg, &mut full);
        let mut pre = build_with_calendar(&cfg, kind);
        let bytes = pre.snapshot(split).expect("snapshot");
        // Cross-backend restore: the canonical calendar form makes the
        // snapshot backend-independent.
        for rkind in KINDS {
            let mut resumed =
                Sim::restore(RoccModel::new(cfg.clone()), rkind, &bytes).expect("restore");
            let (m, p) = final_state(&cfg, &mut resumed);
            assert_eq!(m, full_metrics, "{kind:?} -> {rkind:?}");
            assert_eq!(p, full_payload, "{kind:?} -> {rkind:?}");
        }
        payloads.push((full_metrics, full_payload));
    }
    // And the two backends agree with each other end-to-end.
    assert_eq!(payloads[0], payloads[1]);
}

/// Deterministic pin: a snapshot taken mid-shed — while the degradation
/// controller is actively throttling apps and shedding low-priority
/// samples under an overload ramp — is bitwise invisible on both backends
/// and across them.
#[test]
fn degraded_run_equivalence_on_both_backends() {
    let mut params = paradyn_workload::RoccParams::default();
    params.pipe_capacity = 8;
    let cfg = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 2,
        apps_per_node: 4,
        sampling_period_us: 500.0,
        duration_s: 0.3,
        seed: 0xDE6,
        params,
        degradation: Some(DegradationConfig {
            tiers: 4,
            keep_tiers: 2,
            pipe_hi: 0.5,
            pipe_lo: 0.25,
            daemon_hi: 4,
            daemon_lo: 1,
            recover_period_us: 5_000.0,
            hysteresis_us: 10_000.0,
            ..Default::default()
        }),
        overload: Some(OverloadRamp {
            at_s: 0.05,
            factor: 8.0,
        }),
        ..Default::default()
    };
    // The controller must actually be mid-flight for this pin to bite.
    let m = run(&cfg);
    assert!(m.shed_samples > 0, "config never sheds: {m:?}");
    assert!(m.throttle_events > 0, "config never throttles");

    let split = SimTime::from_secs_f64(0.15);
    let mut payloads = vec![];
    for kind in KINDS {
        let mut full = build_with_calendar(&cfg, kind);
        let (full_metrics, full_payload) = final_state(&cfg, &mut full);
        let mut pre = build_with_calendar(&cfg, kind);
        let bytes = pre.snapshot(split).expect("snapshot");
        for rkind in KINDS {
            let mut resumed =
                Sim::restore(RoccModel::new(cfg.clone()), rkind, &bytes).expect("restore");
            let (metrics, payload) = final_state(&cfg, &mut resumed);
            assert_eq!(metrics, full_metrics, "{kind:?} -> {rkind:?}");
            assert_eq!(payload, full_payload, "{kind:?} -> {rkind:?}");
        }
        payloads.push((full_metrics, full_payload));
    }
    assert_eq!(payloads[0], payloads[1]);
}

// ---------------------------------------------------------------------------
// Frame rejection at the Sim level.
// ---------------------------------------------------------------------------

fn reject_cfg() -> SimConfig {
    SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 1,
        duration_s: 0.05,
        seed: 7,
        ..Default::default()
    }
}

#[test]
fn corrupted_frames_are_rejected_not_panicked() {
    let cfg = reject_cfg();
    let kind = CalendarKind::Wheel;
    let mut sim = build_with_calendar(&cfg, kind);
    let bytes = sim.snapshot(SimTime::from_secs_f64(0.01)).expect("snapshot");

    // The pristine frame restores.
    assert!(Sim::restore(RoccModel::new(cfg.clone()), kind, &bytes).is_ok());

    // Every truncation point is an error, never a panic.
    for cut in [0, 1, 4, 8, 23, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            Sim::restore(RoccModel::new(cfg.clone()), kind, &bytes[..cut]).is_err(),
            "truncation at {cut} accepted"
        );
    }

    // Trailing garbage is an error.
    let mut long = bytes.clone();
    long.push(0);
    assert_eq!(
        Sim::restore(RoccModel::new(cfg.clone()), kind, &long).err(),
        Some(SnapError::TrailingBytes)
    );

    // Single-bit flips across the frame are errors (the checksum or a
    // structural validator catches them), never panics or silent accepts.
    let step = (bytes.len() / 64).max(1);
    for pos in (0..bytes.len()).step_by(step) {
        for bit in [0u8, 7] {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 1 << bit;
            assert!(
                Sim::restore(RoccModel::new(cfg.clone()), kind, &flipped).is_err(),
                "bit flip at byte {pos} bit {bit} accepted"
            );
        }
    }

    // A snapshot from a different configuration is a fingerprint mismatch.
    let other = SimConfig {
        seed: 8,
        ..cfg.clone()
    };
    match Sim::restore(RoccModel::new(other), kind, &bytes).err() {
        Some(SnapError::ConfigMismatch { .. }) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// rewind_bisect: pinned divergence localization.
// ---------------------------------------------------------------------------

/// Deterministic chain: event `n` fires at `t = 100·n` ns and schedules
/// `n+1` until `n == 10`. The `hiccup` variant additionally bumps a
/// counter while handling event 5 — the seeded divergence.
struct DivModel {
    hiccup: bool,
    count: u64,
    extra: u64,
}

impl Model for DivModel {
    type Event = u32;
    fn handle(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
        self.count += 1;
        if self.hiccup && ev == 5 {
            self.extra += 1;
        }
        if ev < 10 {
            ctx.schedule_in(SimDur::from_nanos(100), ev + 1);
        }
    }
}

impl PersistState for DivModel {
    fn fingerprint(&self) -> u64 {
        paradyn_des::fnv1a(&[b"DivModel"[0], self.hiccup as u8])
    }
    fn save_state(&self, w: &mut Enc) {
        w.put_u64(self.count);
        w.put_u64(self.extra);
    }
    fn load_state(&mut self, r: &mut Dec<'_>) -> Result<(), SnapError> {
        self.count = r.take_u64()?;
        self.extra = r.take_u64()?;
        Ok(())
    }
}

fn div_sim(hiccup: bool) -> Sim<DivModel> {
    let mut sim = Sim::new(DivModel {
        hiccup,
        count: 0,
        extra: 0,
    });
    sim.ctx().schedule_at(SimTime::ZERO, 0);
    sim
}

#[test]
fn rewind_bisect_pinpoints_seeded_divergence() {
    let horizon = SimTime::from_nanos(10_000);
    let d = rewind_bisect(|| div_sim(false), || div_sim(true), horizon)
        .expect("bisect")
        .expect("runs must diverge");
    // Event 5 fires at t = 500 ns after 5 identically handled events; it is
    // the same (time, event) pair in both runs, with divergent outcomes.
    assert_eq!(d.at, SimTime::from_nanos(500));
    assert_eq!(d.executed_before, 5);
    assert_eq!(d.event_a, "5");
    assert_eq!(d.event_b, "5");
    let report = d.to_string();
    assert!(
        report.contains("t=500 ns") && report.contains("#5"),
        "unhelpful divergence report: {report}"
    );
}

#[test]
fn rewind_bisect_reports_no_divergence_for_identical_runs() {
    let horizon = SimTime::from_nanos(10_000);
    assert_eq!(
        rewind_bisect(|| div_sim(true), || div_sim(true), horizon).expect("bisect"),
        None
    );
}

#[test]
fn rewind_bisect_locates_seed_divergence_on_full_model() {
    let a = reject_cfg();
    let b = SimConfig { seed: 8, ..a.clone() };
    let horizon = SimTime::from_secs_f64(a.duration_s);
    let kind = CalendarKind::Wheel;
    let d = rewind_bisect(
        || build_with_calendar(&a, kind),
        || build_with_calendar(&b, kind),
        horizon,
    )
    .expect("bisect")
    .expect("different seeds must diverge");
    // Different seeds differ from the very first state exposure.
    assert_eq!(d.executed_before, 0);
    assert_eq!(d.at, SimTime::ZERO);
}

// ---------------------------------------------------------------------------
// Fork-from-snapshot: warmup skipped, results bit-identical to the
// re-simulate-from-zero oracle.
// ---------------------------------------------------------------------------

#[test]
fn fork_n_matches_from_zero_oracle_bitwise() {
    let cfg = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 2,
        duration_s: 0.06,
        seed: 0xF02C,
        ..Default::default()
    };
    let warmup_s = 0.02;
    let kind = CalendarKind::Wheel;
    let warm = warm_snapshot(&cfg, SimTime::from_secs_f64(warmup_s), kind).expect("warm");
    let horizon = SimTime::from_secs_f64(cfg.duration_s);

    let salts = [paradyn_core::replication_seed(cfg.seed, 0), 7, 7];
    let mut sims = fork_n(&cfg, &warm, kind, &salts).expect("fork");
    let payloads: Vec<Vec<u8>> = sims
        .iter_mut()
        .map(|s| {
            s.run_until(horizon);
            s.state_payload()
        })
        .collect();

    // Same salt => identical fork; different salt => different trajectory.
    assert_eq!(payloads[1], payloads[2]);
    assert_ne!(payloads[0], payloads[1]);

    // Fork 0 is bit-identical to warming from zero with the same salt.
    let oracle = run_perturbed_from_zero(&cfg, warmup_s, 0);
    let forked_metrics = {
        let mut sims = fork_n(&cfg, &warm, kind, &salts[..1]).expect("fork");
        sims[0].run_until(horizon);
        let events = sims[0].executed_events();
        sims[0].model.metrics(horizon - SimTime::ZERO, events)
    };
    assert_eq!(format!("{forked_metrics:?}"), format!("{oracle:?}"));
}

#[test]
fn run_forked_is_thread_count_invariant() {
    let cfg = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 1,
        duration_s: 0.05,
        seed: 0x51ED,
        ..Default::default()
    };
    let serial = run_forked(&cfg, 0.01, 5, 1).expect("serial");
    let parallel = run_forked(&cfg, 0.01, 5, 4).expect("parallel");
    assert_eq!(serial.len(), 5);
    for (rep, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "rep {rep}");
    }
}

// ---------------------------------------------------------------------------
// Sensitivity self-check: the equivalence assertions above must be able to
// go red. Perturbing the restored snapshot's RNG streams is the smallest
// honest mutation — if it no longer breaks equivalence, the suite is blind.
// ---------------------------------------------------------------------------

#[test]
fn perturbed_restore_breaks_equivalence() {
    let cfg = reject_cfg();
    let kind = CalendarKind::Wheel;

    let mut full = build_with_calendar(&cfg, kind);
    let (full_metrics, full_payload) = final_state(&cfg, &mut full);

    let mut pre = build_with_calendar(&cfg, kind);
    let bytes = pre.snapshot(SimTime::from_secs_f64(0.01)).expect("snapshot");
    let mut resumed = Sim::restore(RoccModel::new(cfg.clone()), kind, &bytes).expect("restore");
    resumed.model.perturb_streams(0xD15EA5E);
    let (metrics, payload) = final_state(&cfg, &mut resumed);

    assert_ne!(
        payload, full_payload,
        "stream perturbation was invisible: the equivalence suite cannot detect divergence"
    );
    assert_ne!(
        metrics, full_metrics,
        "stream perturbation left metrics untouched: the equivalence suite cannot detect divergence"
    );
}

//! The workload-modelling ablation: distribution-fit vs. raw-trace replay.
//!
//! The paper fits theoretical distributions to traced burst lengths
//! (Section 2.3.2) and argues the fit suffices. Replay mode lets us test
//! that claim: driving the simulator with the *same trace's* raw bursts
//! must give the same macroscopic answers as the fitted model.

use paradyn_core::{run, validation_config, SimConfig};
use paradyn_stats::SplitMix64;
use paradyn_workload::{synthesize, ProcessClass, ReplaySchedule, SynthConfig};
use std::sync::Arc;

fn schedule() -> Arc<ReplaySchedule> {
    let trace = synthesize(
        &SynthConfig {
            duration_us: 60.0e6,
            ..Default::default()
        },
        &mut SplitMix64(99),
    );
    Arc::new(ReplaySchedule::from_trace(&trace))
}

#[test]
fn replay_reproduces_table3_validation() {
    let cfg = SimConfig {
        replay: Some(schedule()),
        ..validation_config()
    };
    let m = run(&cfg);
    let app = m.cpu_time_s(ProcessClass::Application);
    assert!(
        (app - 85.71).abs() / 85.71 < 0.10,
        "replayed app CPU {app} vs measured 85.71"
    );
}

#[test]
fn fitted_model_and_replay_agree_on_macroscopic_metrics() {
    // The paper's central modelling claim, quantified.
    let base = validation_config();
    let fitted = run(&base);
    let replayed = run(&SimConfig {
        replay: Some(schedule()),
        ..base
    });
    let rel = |a: f64, b: f64| (a - b).abs() / a.max(1e-12);
    assert!(
        rel(fitted.app_cpu_util_per_node, replayed.app_cpu_util_per_node) < 0.05,
        "app util: fitted {} vs replay {}",
        fitted.app_cpu_util_per_node,
        replayed.app_cpu_util_per_node
    );
    assert!(
        rel(fitted.pd_cpu_util_per_node, replayed.pd_cpu_util_per_node) < 0.20,
        "pd util: fitted {} vs replay {}",
        fitted.pd_cpu_util_per_node,
        replayed.pd_cpu_util_per_node
    );
    assert!(
        rel(
            fitted.throughput_per_s.max(1e-9),
            replayed.throughput_per_s
        ) < 0.15
    );
}

#[test]
fn replay_is_deterministic_without_rng_dependence() {
    let cfg = SimConfig {
        replay: Some(schedule()),
        duration_s: 5.0,
        ..validation_config()
    };
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(a.events, b.events);
    // Changing the seed only perturbs sampling/background randomness, not
    // the application bursts — generated samples change, but application
    // CPU time barely moves.
    let c = run(&SimConfig { seed: 7, ..cfg });
    let rel = (a.cpu_time_s(ProcessClass::Application)
        - c.cpu_time_s(ProcessClass::Application))
    .abs()
        / a.cpu_time_s(ProcessClass::Application);
    assert!(rel < 0.02, "replayed app CPU drifted {rel} across seeds");
}

#[test]
fn staggered_offsets_decorrelate_processes() {
    // With several replaying processes on one node, staggered start
    // offsets must prevent lockstep (identical burst streams would make
    // utilization deterministic in an unrealistic way — check the node
    // still interleaves work from all apps).
    let cfg = SimConfig {
        replay: Some(schedule()),
        apps_per_node: 4,
        nodes: 1,
        duration_s: 5.0,
        ..validation_config()
    };
    let m = run(&cfg);
    // Four CPU-hungry replaying apps saturate the node CPU.
    assert!(m.app_cpu_util_per_node > 0.85); // node also hosts Pd, main, background
    assert!(m.generated_samples > 0);
}

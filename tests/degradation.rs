//! Contracts of the closed-loop graceful-degradation subsystem: inert
//! configurations are bitwise invisible, the extended conservation
//! invariant `emitted == received + lost + shed + in-flight` holds under
//! every fault plan and overflow policy at every thread count on both
//! calendar backends, only sheddable tiers are ever shed, and backpressure
//! actually propagates down the MPP forwarding tree.

use paradyn_core::{
    build_with_calendar, run, run_replicated_threads, Arch, ConsumerStallFaults,
    DaemonCrashFaults, DegradationConfig, FaultPlan, Forwarding, LinkFaults, OverflowPolicy,
    OverloadRamp, SimConfig, SimMetrics,
};
use paradyn_des::{CalendarKind, SimTime};

/// A degradation config with watermarks low enough to engage under the
/// overloaded configurations below.
fn tight_degradation() -> DegradationConfig {
    DegradationConfig {
        tiers: 4,
        keep_tiers: 2,
        pipe_hi: 0.5,
        pipe_lo: 0.25,
        daemon_hi: 6,
        daemon_lo: 2,
        md_factor: 2.0,
        max_slowdown: 8.0,
        recover_step: 0.5,
        recover_period_us: 20_000.0,
        hysteresis_us: 50_000.0,
    }
}

/// Small pipes, fast sampling, several apps per daemon, and a 4× offered
/// load ramp at 1 s: saturates the collection path so the watermarks fire.
fn overloaded_cfg(batch: usize, overflow: OverflowPolicy) -> SimConfig {
    let mut params = paradyn_workload::RoccParams::default();
    params.pipe_capacity = 8;
    SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 4,
        apps_per_node: 4,
        sampling_period_us: 4_000.0,
        batch,
        duration_s: 5.0,
        params,
        faults: FaultPlan {
            overflow,
            ..FaultPlan::default()
        },
        degradation: Some(tight_degradation()),
        overload: Some(OverloadRamp {
            at_s: 1.0,
            factor: 4.0,
        }),
        ..Default::default()
    }
}

fn all_faults(overflow: OverflowPolicy) -> FaultPlan {
    FaultPlan {
        overflow,
        daemon_crash: Some(DaemonCrashFaults {
            mtbf_us: 800_000.0,
            recovery_us: 200_000.0,
        }),
        link: Some(LinkFaults {
            fail_prob: 0.10,
            max_retries: 3,
            backoff_base_us: 5_000.0,
        }),
        stall: Some(ConsumerStallFaults {
            interval_us: 300_000.0,
            stall_us: 20_000.0,
        }),
    }
}

fn assert_conservation(m: &SimMetrics, ctx: &str) {
    assert_eq!(
        m.emitted_samples,
        m.received_samples + m.samples_lost + m.shed_samples + m.samples_in_flight,
        "{ctx}: emitted={} received={} lost={} shed={} in_flight={}",
        m.emitted_samples,
        m.received_samples,
        m.samples_lost,
        m.shed_samples,
        m.samples_in_flight
    );
    assert_eq!(
        m.shed_samples,
        m.shed_by_tier.iter().sum::<u64>(),
        "{ctx}: tier breakdown"
    );
    assert_eq!(m.rejected_deposits, 0, "{ctx}");
}

fn assert_bitwise_equal(a: &SimMetrics, b: &SimMetrics, ctx: &str) {
    assert_eq!(a.events, b.events, "{ctx}: events");
    assert_eq!(a.emitted_samples, b.emitted_samples, "{ctx}: emitted");
    assert_eq!(a.received_samples, b.received_samples, "{ctx}: received");
    assert_eq!(a.generated_samples, b.generated_samples, "{ctx}: generated");
    assert_eq!(a.samples_lost, b.samples_lost, "{ctx}: lost");
    assert_eq!(a.shed_samples, b.shed_samples, "{ctx}: shed");
    assert_eq!(a.throttle_events, b.throttle_events, "{ctx}: throttle");
    assert_eq!(
        a.backpressure_events, b.backpressure_events,
        "{ctx}: backpressure"
    );
    assert_eq!(
        a.latency_mean_s.to_bits(),
        b.latency_mean_s.to_bits(),
        "{ctx}: latency"
    );
    assert_eq!(
        a.pd_cpu_per_node_s.to_bits(),
        b.pd_cpu_per_node_s.to_bits(),
        "{ctx}: pd cpu"
    );
    assert_eq!(
        a.writer_block_time_s.to_bits(),
        b.writer_block_time_s.to_bits(),
        "{ctx}: block time"
    );
}

/// The degradation machinery actually engages under overload: samples are
/// shed, throttles fire, and only sheddable tiers are ever shed.
#[test]
fn degradation_engages_and_protects_top_tiers() {
    let m = run(&overloaded_cfg(1, OverflowPolicy::Block));
    assert!(m.shed_samples > 0, "no shedding under overload: {m:?}");
    assert!(m.throttle_events > 0, "no throttling under overload");
    let deg = tight_degradation();
    for tier in 0..deg.keep_tiers {
        assert_eq!(
            m.shed_by_tier[tier], 0,
            "protected tier {tier} was shed: {:?}",
            m.shed_by_tier
        );
    }
    assert!(
        (deg.keep_tiers..deg.tiers).any(|t| m.shed_by_tier[t] > 0),
        "sheddable tiers untouched: {:?}",
        m.shed_by_tier
    );
    assert_conservation(&m, "engaged overload run");
}

/// The extended conservation invariant holds with degradation active under
/// every fault class and overflow policy, for CF and BF.
#[test]
fn conservation_with_shed_under_all_faults_and_policies() {
    for overflow in [
        OverflowPolicy::Block,
        OverflowPolicy::DropNewest,
        OverflowPolicy::DropOldest,
    ] {
        for batch in [1usize, 8] {
            let cfg = SimConfig {
                faults: all_faults(overflow),
                ..overloaded_cfg(batch, overflow)
            };
            let m = run(&cfg);
            assert!(m.daemon_crashes > 0, "{overflow:?}: no crashes injected");
            assert_conservation(&m, &format!("{overflow:?} batch={batch}"));
        }
    }
}

/// Conservation and backpressure propagation on the MPP binary tree:
/// pressure edges reach the subtree and shed counters stay conserved.
#[test]
fn backpressure_propagates_on_mpp_tree() {
    let mut cfg = SimConfig {
        arch: Arch::Mpp {
            forwarding: Forwarding::BinaryTree,
        },
        nodes: 8,
        batch: 8,
        ..overloaded_cfg(8, OverflowPolicy::Block)
    };
    cfg.faults = all_faults(OverflowPolicy::Block);
    let m = run(&cfg);
    assert_conservation(&m, "mpp tree");
    assert!(
        m.backpressure_events > 0,
        "no pressure edges propagated on the tree"
    );
    assert!(m.shed_samples > 0, "tree daemons never shed");
}

/// Degraded runs are bit-identical across 1, 2, and 8 worker threads.
#[test]
fn degraded_runs_are_thread_count_invariant() {
    let cfg = SimConfig {
        faults: all_faults(OverflowPolicy::DropOldest),
        ..overloaded_cfg(8, OverflowPolicy::DropOldest)
    };
    let serial = run_replicated_threads(&cfg, 5, 0.90, 1);
    for threads in [2usize, 8] {
        let parallel = run_replicated_threads(&cfg, 5, 0.90, threads);
        for (r, (a, b)) in serial.runs.iter().zip(&parallel.runs).enumerate() {
            assert_bitwise_equal(a, b, &format!("rep {r} threads {threads}"));
            assert_conservation(a, &format!("rep {r}"));
        }
    }
}

/// Degraded runs are bit-identical on both calendar backends.
#[test]
fn degraded_runs_match_across_calendar_backends() {
    let cfg = SimConfig {
        faults: all_faults(OverflowPolicy::Block),
        ..overloaded_cfg(1, OverflowPolicy::Block)
    };
    let horizon = SimTime::from_secs_f64(cfg.duration_s);
    let [wheel, heap] = [CalendarKind::Wheel, CalendarKind::Heap].map(|kind| {
        let mut sim = build_with_calendar(&cfg, kind);
        sim.run_until(horizon);
        let events = sim.executed_events();
        sim.model.metrics(horizon - SimTime::ZERO, events)
    });
    assert_bitwise_equal(&wheel, &heap, "wheel vs heap");
    assert_conservation(&wheel, "wheel");
}

/// An inert overload ramp (factor 1) and an absent degradation config are
/// both bitwise invisible; a degradation config whose watermarks never
/// trip draws nothing and changes nothing either.
#[test]
fn inert_degradation_changes_nothing() {
    let base = SimConfig {
        arch: Arch::Now {
            contention_free: false,
        },
        nodes: 4,
        duration_s: 4.0,
        ..Default::default()
    };
    let plain = run(&base);
    // Ramp with factor 1 schedules no event and divides by nothing.
    let ramp1 = run(&SimConfig {
        overload: Some(OverloadRamp {
            at_s: 1.0,
            factor: 1.0,
        }),
        ..base.clone()
    });
    assert_bitwise_equal(&plain, &ramp1, "factor-1 ramp");
    // Watermarks far above anything a default run reaches (the default
    // 170-slot pipe never fills here): the controller holds no events, no
    // draws, and no state changes.
    let lax = run(&SimConfig {
        degradation: Some(DegradationConfig {
            pipe_hi: 1.0,
            pipe_lo: 0.9,
            daemon_hi: 1_000_000,
            daemon_lo: 10,
            ..DegradationConfig::default()
        }),
        ..base.clone()
    });
    assert_eq!(lax.throttle_events, 0);
    assert_eq!(lax.shed_samples, 0);
    assert_eq!(lax.backpressure_events, 0);
    assert_bitwise_equal(&plain, &lax, "untripped watermarks");
}

/// Throttling recovers: after the ramp is survived with degradation, the
/// system keeps delivering samples (goodput does not collapse to zero) and
/// protected-tier delivery continues.
#[test]
fn degraded_system_keeps_delivering() {
    let m = run(&overloaded_cfg(8, OverflowPolicy::Block));
    assert!(m.received_samples > 0);
    // Shedding must not exceed what was actually emitted by sheddable
    // tiers; with half the tiers sheddable it is strictly less than all
    // emissions.
    assert!(m.shed_samples < m.emitted_samples);
    assert_conservation(&m, "goodput run");
}

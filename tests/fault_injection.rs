//! Contracts of the fault-injection and graceful-degradation layer: fault
//! schedules are deterministic and thread-count invariant, sample
//! conservation holds under every overflow policy with every fault class
//! active, and the model reproduces the expected robustness asymmetries
//! (BF loses more per crash than CF, blocking pipes trade loss for
//! writer-block time).

use paradyn_core::{
    run, run_replicated_threads, Arch, ConsumerStallFaults, DaemonCrashFaults, FaultPlan,
    Forwarding, LinkFaults, OverflowPolicy, SimConfig, SimMetrics,
};

fn all_faults(overflow: OverflowPolicy) -> FaultPlan {
    FaultPlan {
        overflow,
        daemon_crash: Some(DaemonCrashFaults {
            mtbf_us: 800_000.0,
            recovery_us: 200_000.0,
        }),
        link: Some(LinkFaults {
            fail_prob: 0.10,
            max_retries: 3,
            backoff_base_us: 5_000.0,
        }),
        stall: Some(ConsumerStallFaults {
            interval_us: 300_000.0,
            stall_us: 20_000.0,
        }),
    }
}

fn faulty_cfg(batch: usize, overflow: OverflowPolicy) -> SimConfig {
    SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 4,
        batch,
        duration_s: 5.0,
        faults: all_faults(overflow),
        ..Default::default()
    }
}

fn assert_bitwise_equal(a: &SimMetrics, b: &SimMetrics) {
    assert_eq!(a.events, b.events);
    assert_eq!(a.emitted_samples, b.emitted_samples);
    assert_eq!(a.received_samples, b.received_samples);
    assert_eq!(a.samples_lost, b.samples_lost);
    assert_eq!(a.lost_overflow, b.lost_overflow);
    assert_eq!(a.lost_daemon_crash, b.lost_daemon_crash);
    assert_eq!(a.lost_link, b.lost_link);
    assert_eq!(a.daemon_crashes, b.daemon_crashes);
    assert_eq!(a.forward_retries, b.forward_retries);
    assert_eq!(a.daemon_downtime_s.to_bits(), b.daemon_downtime_s.to_bits());
    assert_eq!(
        a.writer_block_time_s.to_bits(),
        b.writer_block_time_s.to_bits()
    );
    assert_eq!(a.latency_mean_s.to_bits(), b.latency_mean_s.to_bits());
    assert_eq!(
        a.consumer_stall_time_s.to_bits(),
        b.consumer_stall_time_s.to_bits()
    );
}

/// The replicated fault sweep is bit-identical at 1, 2, and 8 worker
/// threads — the fault event streams are a pure function of the seed.
#[test]
fn fault_sweep_is_thread_count_invariant() {
    let cfg = faulty_cfg(16, OverflowPolicy::Block);
    let serial = run_replicated_threads(&cfg, 6, 0.90, 1);
    for threads in [2, 8] {
        let parallel = run_replicated_threads(&cfg, 6, 0.90, threads);
        for (a, b) in serial.runs.iter().zip(&parallel.runs) {
            assert_bitwise_equal(a, b);
        }
        assert_eq!(
            serial.samples_lost.mean.to_bits(),
            parallel.samples_lost.mean.to_bits()
        );
        assert_eq!(
            serial.daemon_downtime_s.mean.to_bits(),
            parallel.daemon_downtime_s.mean.to_bits()
        );
    }
}

/// Sample conservation under every overflow policy with every fault class
/// active: every emission is received, lost (to a counted cause), or still
/// in flight at the horizon.
#[test]
fn conservation_holds_under_all_faults_and_policies() {
    for overflow in [
        OverflowPolicy::Block,
        OverflowPolicy::DropNewest,
        OverflowPolicy::DropOldest,
    ] {
        for batch in [1usize, 32] {
            let m = run(&faulty_cfg(batch, overflow));
            assert!(m.daemon_crashes > 0, "{overflow:?}: no crashes injected");
            assert_eq!(
                m.emitted_samples,
                m.received_samples + m.samples_lost + m.samples_in_flight,
                "{overflow:?} batch={batch}: emitted={} received={} lost={} in_flight={}",
                m.emitted_samples,
                m.received_samples,
                m.samples_lost,
                m.samples_in_flight
            );
            assert_eq!(
                m.samples_lost,
                m.lost_overflow + m.lost_while_blocked + m.lost_daemon_crash + m.lost_link
            );
            assert_eq!(m.rejected_deposits, 0);
        }
    }
}

/// Conservation also holds on the MPP merge tree, where link faults apply
/// per hop.
#[test]
fn conservation_holds_on_mpp_tree_under_faults() {
    let m = run(&SimConfig {
        arch: Arch::Mpp {
            forwarding: Forwarding::BinaryTree,
        },
        nodes: 8,
        batch: 8,
        duration_s: 5.0,
        faults: all_faults(OverflowPolicy::Block),
        ..Default::default()
    });
    assert!(m.daemon_crashes > 0);
    assert_eq!(
        m.emitted_samples,
        m.received_samples + m.samples_lost + m.samples_in_flight
    );
}

/// BF loses more samples per crash than CF under an identical crash
/// schedule (common random numbers): the in-daemon batch dies with the
/// daemon.
#[test]
fn bf_loses_more_per_crash_than_cf() {
    let plan = FaultPlan {
        daemon_crash: Some(DaemonCrashFaults::default()),
        ..FaultPlan::default()
    };
    let base = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 4,
        duration_s: 10.0,
        faults: plan,
        ..Default::default()
    };
    let cf = run(&base);
    let bf = run(&SimConfig {
        batch: 32,
        ..base.clone()
    });
    // Common random numbers: the crash schedule is drawn from its own
    // stream, so both policies see the same crashes.
    assert_eq!(cf.daemon_crashes, bf.daemon_crashes);
    assert!(cf.daemon_crashes > 0);
    let per_crash = |m: &SimMetrics| m.lost_daemon_crash as f64 / m.daemon_crashes as f64;
    assert!(
        per_crash(&bf) > per_crash(&cf),
        "bf={} cf={}",
        per_crash(&bf),
        per_crash(&cf)
    );
}

/// Injecting faults never perturbs the existing stochastic elements: a
/// fault-free plan produces bitwise the same run as the pre-fault model.
#[test]
fn inert_fault_plan_changes_nothing() {
    let base = SimConfig {
        arch: Arch::Now {
            contention_free: false,
        },
        nodes: 4,
        duration_s: 4.0,
        ..Default::default()
    };
    let a = run(&base);
    let b = run(&SimConfig {
        faults: FaultPlan::default(),
        ..base.clone()
    });
    assert_bitwise_equal(&a, &b);
    assert_eq!(a.daemon_crashes, 0);
    assert_eq!(a.samples_lost, 0);
    assert_eq!(a.consumer_stall_time_s, 0.0);
}

/// A lossy pipe never blocks the writer; a blocking pipe under long
/// outages accumulates writer-block time instead of overflow loss.
#[test]
fn overflow_policy_trades_blocking_for_loss() {
    // Long outages relative to the pipe: recovery generates more samples
    // than the pipe holds.
    let crash = DaemonCrashFaults {
        mtbf_us: 2_000_000.0,
        recovery_us: 1_500_000.0,
    };
    let base = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 2,
        sampling_period_us: 5_000.0,
        duration_s: 10.0,
        ..Default::default()
    };
    let block = run(&SimConfig {
        faults: FaultPlan {
            overflow: OverflowPolicy::Block,
            daemon_crash: Some(crash),
            ..FaultPlan::default()
        },
        ..base.clone()
    });
    let lossy = run(&SimConfig {
        faults: FaultPlan {
            overflow: OverflowPolicy::DropNewest,
            daemon_crash: Some(crash),
            ..FaultPlan::default()
        },
        ..base.clone()
    });
    assert!(
        block.writer_block_time_s > 0.0,
        "blocking pipe never blocked (block_time=0)"
    );
    assert_eq!(block.lost_overflow, 0);
    assert_eq!(lossy.writer_block_time_s, 0.0);
    assert_eq!(lossy.blocked_deposits, 0);
    assert!(lossy.lost_overflow > 0, "lossy pipe never dropped");
}

/// Certain link failure with bounded retries drops every batch: nothing is
/// delivered, everything emitted is lost or in flight, and retries were
/// actually attempted.
#[test]
fn certain_link_failure_loses_everything() {
    let m = run(&SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 2,
        duration_s: 4.0,
        faults: FaultPlan {
            link: Some(LinkFaults {
                fail_prob: 1.0,
                max_retries: 2,
                backoff_base_us: 1_000.0,
            }),
            ..FaultPlan::default()
        },
        ..Default::default()
    });
    assert_eq!(m.received_samples, 0);
    assert!(m.lost_link > 0);
    assert!(m.forward_retries > 0);
    assert_eq!(
        m.emitted_samples,
        m.samples_lost + m.samples_in_flight
    );
}

/// Crash/downtime/recovery metrics are populated and mutually consistent.
#[test]
fn downtime_and_recovery_metrics_are_consistent() {
    let m = run(&faulty_cfg(8, OverflowPolicy::Block));
    assert!(m.daemon_crashes > 0);
    assert!(m.daemon_downtime_s > 0.0);
    assert!(m.forward_retries > 0);
    assert!(m.consumer_stall_time_s > 0.0);
    let mean_recovery = m.daemon_downtime_s / m.daemon_crashes as f64;
    assert!((m.recovery_latency_mean_s - mean_recovery).abs() < 1e-12);
    // Downtime cannot exceed (crashes × recovery delay) + one open outage.
    assert!(m.daemon_downtime_s <= 0.2 * (m.daemon_crashes + 4) as f64);
}

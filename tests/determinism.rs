//! Reproducibility contracts: identical seeds give bit-identical results
//! on every architecture, and the common-random-numbers discipline keeps
//! configuration changes from perturbing unrelated stochastic elements.

use paradyn_core::{
    build_with_calendar, run, run_replicated_threads, run_sharded, Arch, DegradationConfig,
    Forwarding, OverloadRamp, SimConfig, SimMetrics,
};
use paradyn_des::{rewind_bisect, CalendarKind, SimTime};

fn all_arch_configs() -> Vec<SimConfig> {
    vec![
        SimConfig {
            arch: Arch::Now {
                contention_free: false,
            },
            nodes: 4,
            duration_s: 3.0,
            ..Default::default()
        },
        SimConfig {
            arch: Arch::Now {
                contention_free: true,
            },
            nodes: 4,
            duration_s: 3.0,
            ..Default::default()
        },
        SimConfig {
            arch: Arch::Smp,
            nodes: 8,
            apps_per_node: 16,
            pds: 2,
            batch: 8,
            duration_s: 3.0,
            ..Default::default()
        },
        SimConfig {
            arch: Arch::Mpp {
                forwarding: Forwarding::BinaryTree,
            },
            nodes: 16,
            batch: 16,
            duration_s: 3.0,
            ..Default::default()
        },
    ]
}

/// Bitwise equality over the full metric set (NaN-safe: two NaNs with the
/// same bit pattern compare equal, which is exactly what "bit-identical"
/// means here).
fn assert_metrics_bit_identical(a: &SimMetrics, b: &SimMetrics, ctx: &str) {
    assert_eq!(a.events, b.events, "{ctx}: events");
    assert_eq!(a.received_samples, b.received_samples, "{ctx}: received");
    assert_eq!(a.received_msgs, b.received_msgs, "{ctx}: msgs");
    assert_eq!(a.generated_samples, b.generated_samples, "{ctx}: generated");
    assert_eq!(a.forwarded_batches, b.forwarded_batches, "{ctx}: batches");
    assert_eq!(a.forwarded_samples, b.forwarded_samples, "{ctx}: fwd samples");
    assert_eq!(a.blocked_deposits, b.blocked_deposits, "{ctx}: blocked");
    assert_eq!(a.barrier_ops, b.barrier_ops, "{ctx}: barriers");
    for (name, fa, fb) in [
        ("pd_cpu_per_node_s", a.pd_cpu_per_node_s, b.pd_cpu_per_node_s),
        ("pd_cpu_util", a.pd_cpu_util_per_node, b.pd_cpu_util_per_node),
        ("main_cpu_util", a.main_cpu_util, b.main_cpu_util),
        ("is_cpu_util", a.is_cpu_util_per_node, b.is_cpu_util_per_node),
        ("app_cpu_util", a.app_cpu_util_per_node, b.app_cpu_util_per_node),
        ("latency_mean_s", a.latency_mean_s, b.latency_mean_s),
        ("fwd_latency_mean_s", a.fwd_latency_mean_s, b.fwd_latency_mean_s),
        ("throughput_per_s", a.throughput_per_s, b.throughput_per_s),
        ("net_util", a.net_util, b.net_util),
        ("mean_daemon_batch", a.mean_daemon_batch, b.mean_daemon_batch),
    ] {
        assert_eq!(fa.to_bits(), fb.to_bits(), "{ctx}: {name} {fa} vs {fb}");
    }
}

#[test]
fn parallel_replication_is_bit_identical_to_serial() {
    // The tentpole contract: run_replicated over scoped threads must give
    // exactly the serial answer at every thread count.
    for cfg in [
        SimConfig {
            arch: Arch::Now {
                contention_free: true,
            },
            nodes: 2,
            duration_s: 2.0,
            ..Default::default()
        },
        SimConfig {
            arch: Arch::Mpp {
                forwarding: Forwarding::BinaryTree,
            },
            nodes: 8,
            batch: 16,
            duration_s: 2.0,
            ..Default::default()
        },
    ] {
        let reps = 6;
        let serial = run_replicated_threads(&cfg, reps, 0.90, 1);
        for threads in [2usize, 8] {
            let parallel = run_replicated_threads(&cfg, reps, 0.90, threads);
            assert_eq!(serial.runs.len(), parallel.runs.len());
            for (r, (a, b)) in serial.runs.iter().zip(&parallel.runs).enumerate() {
                assert_metrics_bit_identical(
                    a,
                    b,
                    &format!("{:?} rep {r} threads {threads}", cfg.arch),
                );
            }
            for (name, a, b) in [
                ("pd_cpu_per_node_s", &serial.pd_cpu_per_node_s, &parallel.pd_cpu_per_node_s),
                ("latency_s", &serial.latency_s, &parallel.latency_s),
                ("throughput_per_s", &serial.throughput_per_s, &parallel.throughput_per_s),
            ] {
                assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "{name} mean");
                assert_eq!(
                    a.half_width.to_bits(),
                    b.half_width.to_bits(),
                    "{name} half width"
                );
            }
        }
    }
}

/// The sharded twin of `parallel_replication_is_bit_identical_to_serial`:
/// parallelism *within* one run (DESIGN.md §11) must also give exactly the
/// serial metrics, at every shard count and whether the shards take turns
/// on one thread or each own an OS thread.
#[test]
fn sharded_execution_is_bit_identical_to_serial() {
    let cfg = SimConfig {
        arch: Arch::Mpp {
            forwarding: Forwarding::BinaryTree,
        },
        nodes: 31,
        batch: 16,
        duration_s: 2.0,
        ..Default::default()
    };
    let serial = run(&cfg);
    let kind = CalendarKind::default_from_env();
    let horizon = SimTime::from_secs_f64(cfg.duration_s);
    for shards in [1u16, 2, 4, 8] {
        for threads in [1usize, shards as usize] {
            let sim = run_sharded(&cfg, kind, shards, threads);
            let events = sim.executed_events();
            let m = sim.model.metrics(horizon - SimTime::ZERO, events);
            assert_metrics_bit_identical(
                &m,
                &serial,
                &format!("{shards} shards x {threads} threads"),
            );
        }
    }
}

/// On a determinism failure, rerun the offending configuration through
/// `rewind_bisect` and render the first divergent `(time, event)` pair —
/// turning a bare "metrics differ" assertion into an actionable report.
fn divergence_report(cfg: &SimConfig) -> String {
    let kind = CalendarKind::default_from_env();
    let horizon = SimTime::from_secs_f64(cfg.duration_s);
    match rewind_bisect(
        || build_with_calendar(cfg, kind),
        || build_with_calendar(cfg, kind),
        horizon,
    ) {
        Ok(None) => {
            "rewind_bisect: re-runs are state-identical (divergence not reproducible?)".to_string()
        }
        Ok(Some(d)) => format!("rewind_bisect: {d}"),
        Err(e) => format!("rewind_bisect failed: {e}"),
    }
}

#[test]
fn identical_seeds_are_bit_identical() {
    for cfg in all_arch_configs() {
        let a = run(&cfg);
        let b = run(&cfg);
        let same = a.events == b.events
            && a.received_samples == b.received_samples
            && a.generated_samples == b.generated_samples
            && (a.latency_mean_s.to_bits() == b.latency_mean_s.to_bits())
            && a.pd_cpu_per_node_s.to_bits() == b.pd_cpu_per_node_s.to_bits();
        assert!(
            same,
            "{:?}: identical seeds produced different metrics:\n  a={a:?}\n  b={b:?}\n  {}",
            cfg.arch,
            divergence_report(&cfg)
        );
    }
}

#[test]
fn different_seeds_change_outcomes() {
    for cfg in all_arch_configs() {
        let a = run(&cfg);
        let b = run(&SimConfig {
            seed: cfg.seed ^ 0xDEAD_BEEF,
            ..cfg.clone()
        });
        assert_ne!(
            (a.events, a.received_samples),
            (b.events, b.received_samples),
            "{:?} insensitive to seed",
            cfg.arch
        );
    }
}

#[test]
fn policy_change_reuses_application_randomness() {
    // Common random numbers: switching CF -> BF must not change the
    // application's own compute workload draw (same streams), so total
    // generated samples stay within a tight band even though forwarding
    // behaviour differs.
    let base = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 4,
        duration_s: 5.0,
        ..Default::default()
    };
    let cf = run(&base);
    let bf = run(&SimConfig {
        batch: 32,
        ..base
    });
    let rel = (cf.generated_samples as f64 - bf.generated_samples as f64).abs()
        / cf.generated_samples as f64;
    assert!(rel < 0.02, "CRN violated: generated drift {rel}");
    assert_eq!(
        cf.barrier_ops, bf.barrier_ops,
        "application-side behaviour must be unchanged"
    );
}

/// Thread-count invariance with the degradation controller actively
/// throttling and shedding: the controller's RNG streams and event
/// scheduling must be as replication-safe as the base model's.
#[test]
fn throttled_runs_are_thread_count_invariant() {
    let mut params = paradyn_workload::RoccParams::default();
    params.pipe_capacity = 8;
    let cfg = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 4,
        apps_per_node: 4,
        sampling_period_us: 4_000.0,
        duration_s: 2.0,
        params,
        degradation: Some(DegradationConfig {
            pipe_hi: 0.5,
            pipe_lo: 0.25,
            daemon_hi: 6,
            daemon_lo: 2,
            tiers: 4,
            keep_tiers: 2,
            ..Default::default()
        }),
        overload: Some(OverloadRamp {
            at_s: 0.5,
            factor: 4.0,
        }),
        ..Default::default()
    };
    let probe = run(&cfg);
    assert!(
        probe.throttle_events > 0 && probe.shed_samples > 0,
        "controller never engaged: {probe:?}"
    );
    let serial = run_replicated_threads(&cfg, 6, 0.90, 1);
    for threads in [2usize, 8] {
        let parallel = run_replicated_threads(&cfg, 6, 0.90, threads);
        for (r, (a, b)) in serial.runs.iter().zip(&parallel.runs).enumerate() {
            assert_metrics_bit_identical(a, b, &format!("degraded rep {r} threads {threads}"));
            assert_eq!(a.shed_samples, b.shed_samples, "rep {r}: shed");
            assert_eq!(a.throttle_events, b.throttle_events, "rep {r}: throttle");
        }
    }
}

#[test]
fn metrics_are_internally_consistent() {
    for cfg in all_arch_configs() {
        let m = run(&cfg);
        // Conservation: received <= forwarded <= generated.
        assert!(m.received_samples <= m.forwarded_samples);
        assert!(m.forwarded_samples <= m.generated_samples);
        // Utilizations are physical.
        for u in [
            m.pd_cpu_util_per_node,
            m.main_cpu_util,
            m.app_cpu_util_per_node,
            m.is_cpu_util_per_node,
        ] {
            assert!((0.0..=1.0 + 1e-9).contains(&u), "{u} out of range ({:?})", cfg.arch);
        }
        // Throughput consistent with counters.
        let tput = m.received_samples as f64 / m.duration_s;
        assert!((tput - m.throughput_per_s).abs() < 1e-9);
    }
}

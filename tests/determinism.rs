//! Reproducibility contracts: identical seeds give bit-identical results
//! on every architecture, and the common-random-numbers discipline keeps
//! configuration changes from perturbing unrelated stochastic elements.

use paradyn_core::{run, Arch, Forwarding, SimConfig};

fn all_arch_configs() -> Vec<SimConfig> {
    vec![
        SimConfig {
            arch: Arch::Now {
                contention_free: false,
            },
            nodes: 4,
            duration_s: 3.0,
            ..Default::default()
        },
        SimConfig {
            arch: Arch::Now {
                contention_free: true,
            },
            nodes: 4,
            duration_s: 3.0,
            ..Default::default()
        },
        SimConfig {
            arch: Arch::Smp,
            nodes: 8,
            apps_per_node: 16,
            pds: 2,
            batch: 8,
            duration_s: 3.0,
            ..Default::default()
        },
        SimConfig {
            arch: Arch::Mpp {
                forwarding: Forwarding::BinaryTree,
            },
            nodes: 16,
            batch: 16,
            duration_s: 3.0,
            ..Default::default()
        },
    ]
}

#[test]
fn identical_seeds_are_bit_identical() {
    for cfg in all_arch_configs() {
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.events, b.events, "{:?}", cfg.arch);
        assert_eq!(a.received_samples, b.received_samples);
        assert_eq!(a.generated_samples, b.generated_samples);
        assert!(a.latency_mean_s == b.latency_mean_s || (a.latency_mean_s.is_nan() && b.latency_mean_s.is_nan()));
        assert_eq!(a.pd_cpu_per_node_s, b.pd_cpu_per_node_s);
    }
}

#[test]
fn different_seeds_change_outcomes() {
    for cfg in all_arch_configs() {
        let a = run(&cfg);
        let b = run(&SimConfig {
            seed: cfg.seed ^ 0xDEAD_BEEF,
            ..cfg.clone()
        });
        assert_ne!(
            (a.events, a.received_samples),
            (b.events, b.received_samples),
            "{:?} insensitive to seed",
            cfg.arch
        );
    }
}

#[test]
fn policy_change_reuses_application_randomness() {
    // Common random numbers: switching CF -> BF must not change the
    // application's own compute workload draw (same streams), so total
    // generated samples stay within a tight band even though forwarding
    // behaviour differs.
    let base = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 4,
        duration_s: 5.0,
        ..Default::default()
    };
    let cf = run(&base);
    let bf = run(&SimConfig {
        batch: 32,
        ..base
    });
    let rel = (cf.generated_samples as f64 - bf.generated_samples as f64).abs()
        / cf.generated_samples as f64;
    assert!(rel < 0.02, "CRN violated: generated drift {rel}");
    assert_eq!(
        cf.barrier_ops, bf.barrier_ops,
        "application-side behaviour must be unchanged"
    );
}

#[test]
fn metrics_are_internally_consistent() {
    for cfg in all_arch_configs() {
        let m = run(&cfg);
        // Conservation: received <= forwarded <= generated.
        assert!(m.received_samples <= m.forwarded_samples);
        assert!(m.forwarded_samples <= m.generated_samples);
        // Utilizations are physical.
        for u in [
            m.pd_cpu_util_per_node,
            m.main_cpu_util,
            m.app_cpu_util_per_node,
            m.is_cpu_util_per_node,
        ] {
            assert!((0.0..=1.0 + 1e-9).contains(&u), "{u} out of range ({:?})", cfg.arch);
        }
        // Throughput consistent with counters.
        let tput = m.received_samples as f64 / m.duration_s;
        assert!((tput - m.throughput_per_s).abs() < 1e-9);
    }
}

//! The chaos-search suite: randomized fault/overload scenarios against the
//! invariant oracles, plus a pinned self-check that a seeded conservation
//! violation is actually found and shrunk to a minimal scenario.

use paradyn_isim::chaos;
use paradyn_isim::core_model::run;

/// Every randomly drawn scenario — arbitrary architecture, fault
/// composition, overflow policy, and controller knobs — satisfies all four
/// oracles (conservation, thread invariance, calendar equivalence,
/// snapshot equivalence).
#[test]
fn chaos_scenarios_satisfy_all_oracles() {
    chaos::run_suite(chaos::DEFAULT_MASTER_SEED);
}

/// A different master seed explores a different scenario space and must
/// hold too: the invariants are not an artifact of one sequence.
#[test]
fn chaos_suite_holds_under_alternate_master_seed() {
    chaos::run_suite(0x0DD_5EED);
}

/// The degraded generator actually produces engaging scenarios: at least
/// one early case sheds and throttles, so the suite genuinely exercises
/// the controller rather than vacuous no-op configs.
#[test]
fn degraded_generator_produces_engaging_scenarios() {
    let found = std::panic::catch_unwind(|| {
        paradyn_stats::check::check(
            "chaos_meta_engagement",
            chaos::scenario_property(chaos::DEFAULT_MASTER_SEED, chaos::gen_degraded_scenario, |cfg| {
                let m = run(cfg);
                if m.shed_samples > 0 && m.throttle_events > 0 {
                    Err("engaged".to_string())
                } else {
                    Ok(())
                }
            }),
        )
    });
    assert!(
        found.is_err(),
        "no degraded scenario ever engaged the controller"
    );
}

/// Pinned regression for the chaos search itself: seed a conservation bug
/// (an oracle that ignores the shed counter, as a broken model would) and
/// require the search to find a violating scenario and shrink it — the
/// harness's report must carry the shrunk tape and the scenario.
#[test]
fn seeded_conservation_violation_is_found_and_shrunk() {
    let result = std::panic::catch_unwind(|| {
        paradyn_stats::check::check(
            "chaos_seeded_violation",
            chaos::scenario_property(chaos::DEFAULT_MASTER_SEED, chaos::gen_degraded_scenario, |cfg| {
                let m = run(cfg);
                // The seeded bug: pretend shed samples vanished from the
                // books, exactly what a lost shed counter would look like.
                if m.emitted_samples
                    != m.received_samples + m.samples_lost + m.samples_in_flight
                {
                    Err(format!(
                        "conservation violated: emitted={} != received={} + lost={} + in_flight={}",
                        m.emitted_samples, m.received_samples, m.samples_lost, m.samples_in_flight
                    ))
                } else {
                    Ok(())
                }
            }),
        )
    });
    let err = result.expect_err("the seeded violation must be found");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("conservation violated"), "{msg}");
    assert!(msg.contains("shrunk input tape"), "{msg}");
    assert!(msg.contains("scenario:"), "{msg}");
    assert!(msg.contains("PARADYN_PROP_SEED="), "{msg}");
}

//! Differential property tests for batched same-timestamp delivery:
//! `Sim::run_until` drains whole same-instant runs from the calendar front
//! and dispatches them as a slice, and that must be observationally
//! bit-identical to one-at-a-time `Sim::step` delivery — same `(time,
//! event)` trace including tie order, same executed counts, no residue —
//! on both calendar backends, across random tie-heavy schedules where
//! handlers cancel events that are already sitting *inside* the drained
//! batch.
//!
//! Runs on the in-tree `paradyn_stats::check` harness. Rerun a reported
//! failure with `PARADYN_PROP_SEED=<seed> cargo test <property name>`.

use paradyn_des::{CalendarKind, Ctx, EventHandle, Model, Sim, SimDur, SimTime};
use paradyn_stats::{check, prop_assert, prop_assert_eq};

/// What a plan entry does when its event fires.
#[derive(Clone)]
enum Step {
    /// Cancel the `idx % handles.len()`-th retained handle (often one
    /// scheduled at the *current* instant — i.e. inside the batch).
    Cancel { idx: usize },
    /// Schedule a follow-up event after `delay` ns; `cancellable` chooses
    /// the handle path (`schedule_in`) vs the fire-and-forget path
    /// (`post_in`), so batches mix slab-backed and `NO_SLOT` entries.
    Spawn { delay: u64, cancellable: bool },
}

/// Scripted model: event `id` executes `plan[id]`. All state that decides
/// behavior is updated only through handler execution, so any divergence
/// between delivery strategies shows up as a trace mismatch.
struct Scripted {
    plan: Vec<Vec<Step>>,
    trace: Vec<(u64, u32)>,
    handles: Vec<EventHandle>,
    spawned: usize,
    max_spawns: usize,
}

impl Model for Scripted {
    type Event = u32;
    fn handle(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
        self.trace.push((ctx.now().as_nanos(), ev));
        let steps = self.plan[ev as usize].clone();
        for step in steps {
            match step {
                Step::Cancel { idx } => {
                    if !self.handles.is_empty() {
                        let h = self.handles[idx % self.handles.len()];
                        ctx.cancel(h);
                    }
                }
                Step::Spawn { delay, cancellable } => {
                    if self.spawned >= self.max_spawns {
                        continue;
                    }
                    self.spawned += 1;
                    let id = ((self.spawned * 7 + 3) % self.plan.len()) as u32;
                    let d = SimDur::from_nanos(delay);
                    if cancellable {
                        let h = ctx.schedule_in(d, id);
                        self.handles.push(h);
                    } else {
                        ctx.post_in(d, id);
                    }
                }
            }
        }
    }
}

/// Tie-heavy delays: mostly zero (same instant as the spawner) or shared
/// small multiples, plus a few jumps that cross wheel levels.
fn gen_delay(g: &mut paradyn_stats::Gen) -> u64 {
    const SCALES: [u64; 5] = [0, 1, 64, 4096, 262_144];
    g.u64_in(0, 3) * SCALES[g.index(SCALES.len())]
}

fn gen_plan(g: &mut paradyn_stats::Gen) -> Vec<Vec<Step>> {
    let n = g.usize_in(2, 24);
    (0..n)
        .map(|_| {
            let steps = g.usize_in(0, 3);
            (0..steps)
                .map(|_| match g.u64_in(0, 9) {
                    // Cancels are frequent so some always land on handles
                    // whose events share the current instant.
                    0..=3 => Step::Cancel {
                        idx: g.usize_in(0, 4096),
                    },
                    _ => Step::Spawn {
                        delay: gen_delay(g),
                        cancellable: g.u64_in(0, 1) == 0,
                    },
                })
                .collect()
        })
        .collect()
}

/// Seed events: several ids scheduled at shared instants so the very first
/// delivery is already a multi-event batch.
fn gen_seeds(g: &mut paradyn_stats::Gen, plan_len: usize) -> Vec<(u64, u32)> {
    let n = g.usize_in(1, 16);
    (0..n)
        .map(|_| (gen_delay(g), g.usize_in(0, plan_len - 1) as u32))
        .collect()
}

fn build(kind: CalendarKind, plan: &[Vec<Step>], seeds: &[(u64, u32)]) -> Sim<Scripted> {
    let mut sim = Sim::with_calendar(
        Scripted {
            plan: plan.to_vec(),
            trace: vec![],
            handles: vec![],
            spawned: 0,
            max_spawns: 400,
        },
        kind,
    );
    for &(at, id) in seeds {
        let h = sim.ctx().schedule_at(SimTime::from_nanos(at), id);
        sim.model.handles.push(h);
    }
    sim
}

/// Batched `run_until` delivery equals one-at-a-time `step` delivery, bit
/// for bit, on both backends — including cancellations that land on
/// same-instant events already drained into the batch.
#[test]
fn batched_delivery_matches_one_at_a_time() {
    check("batched_delivery_matches_one_at_a_time", |g| {
        let plan = gen_plan(g);
        let seeds = gen_seeds(g, plan.len());
        let mut traces = vec![];
        for kind in [CalendarKind::Wheel, CalendarKind::Heap] {
            let mut batched = build(kind, &plan, &seeds);
            batched.run_until(SimTime::MAX);
            let mut stepped = build(kind, &plan, &seeds);
            while stepped.step() {}
            prop_assert_eq!(&batched.model.trace, &stepped.model.trace);
            prop_assert_eq!(batched.executed_events(), stepped.executed_events());
            for sim in [&mut batched, &mut stepped] {
                prop_assert_eq!(sim.ctx().pending_events(), 0);
                let s = sim.ctx().calendar_stats();
                prop_assert!(s.cancelled_pending == 0, "cancelled entries left behind");
                prop_assert!(s.slab_free == s.slab_slots, "leaked slab slots");
            }
            traces.push(batched.model.trace);
        }
        // And the two backends agree with each other.
        prop_assert_eq!(&traces[0], &traces[1]);
        Ok(())
    });
}

/// Horizon stops inside tie runs do not change the trace: running the same
/// schedule in many small slices equals one full-drain run.
#[test]
fn batched_delivery_is_horizon_split_invariant() {
    check("batched_delivery_is_horizon_split_invariant", |g| {
        let plan = gen_plan(g);
        let seeds = gen_seeds(g, plan.len());
        for kind in [CalendarKind::Wheel, CalendarKind::Heap] {
            let mut whole = build(kind, &plan, &seeds);
            whole.run_until(SimTime::MAX);
            let mut sliced = build(kind, &plan, &seeds);
            let mut horizon = 0u64;
            while sliced.ctx().pending_events() > 0 {
                horizon += 1 + g.u64_in(0, 4096);
                sliced.run_until(SimTime::from_nanos(horizon));
            }
            prop_assert_eq!(&whole.model.trace, &sliced.model.trace);
            prop_assert_eq!(whole.executed_events(), sliced.executed_events());
        }
        Ok(())
    });
}

/// The canonical in-batch cancellation shape, pinned deterministically:
/// three events share one instant; the first cancels the third while it is
/// already drained into the batch. Exactly the first two fire.
#[test]
fn cancel_inside_batch_suppresses_successor() {
    for kind in [CalendarKind::Wheel, CalendarKind::Heap] {
        // Event 0 cancels handles[2] (event id 2, same instant).
        let plan = vec![vec![Step::Cancel { idx: 2 }], vec![], vec![]];
        let t = SimTime::from_nanos(10);
        let mut sim = build(kind, &plan, &[]);
        for id in [0u32, 1, 2] {
            let h = sim.ctx().schedule_at(t, id);
            sim.model.handles.push(h);
        }
        sim.run_until(SimTime::MAX);
        assert_eq!(sim.model.trace, vec![(10, 0), (10, 1)], "{kind:?}");
        assert_eq!(sim.ctx().pending_events(), 0);
        let s = sim.ctx().calendar_stats();
        assert_eq!(s.cancelled_pending, 0, "{kind:?}: batch left residue");
        assert_eq!(s.slab_free, s.slab_slots, "{kind:?}: leaked slab slots");
    }
}

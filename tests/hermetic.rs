//! Hermetic-build guard: the workspace must never reacquire an external
//! (registry) dependency. The build environment has no crates.io access,
//! so any non-path dependency breaks `cargo build --offline` at dependency
//! resolution — this test fails first, with a readable message.

use std::path::{Path, PathBuf};

/// All manifests in the workspace: the root plus every `crates/*` member.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let mut entries: Vec<_> = std::fs::read_dir(&crates)
        .expect("crates/ directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path().join("Cargo.toml"))
        .filter(|p| p.exists())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 9, "expected the 9 member crates");
    out.extend(entries);
    out
}

/// Collect `name = value` dependency entries from every `[dependencies]`,
/// `[dev-dependencies]`, `[build-dependencies]`, and
/// `[workspace.dependencies]` section of a manifest.
fn dependency_entries(toml: &str) -> Vec<(String, String)> {
    let mut in_dep_section = false;
    let mut entries = vec![];
    for raw in toml.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_dep_section = line.trim_matches(['[', ']'])
                .split('.')
                .any(|seg| seg.ends_with("dependencies"));
            continue;
        }
        if !in_dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, value)) = line.split_once('=') {
            entries.push((name.trim().to_string(), value.trim().to_string()));
        }
    }
    entries
}

#[test]
fn no_workspace_manifest_declares_a_non_path_dependency() {
    for manifest in workspace_manifests() {
        let toml = std::fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        for (name, value) in dependency_entries(&toml) {
            // A dependency is hermetic iff it is an in-tree path dependency
            // or a `.workspace = true` reference to one (the workspace table
            // itself is checked by this same loop).
            let is_path = value.contains("path");
            let is_workspace_ref =
                name.ends_with(".workspace") && value == "true" && name.starts_with("paradyn-");
            assert!(
                is_path || is_workspace_ref,
                "{}: dependency `{name} = {value}` is not an in-tree path \
                 dependency — the build must stay hermetic (see DESIGN.md); \
                 vendor the functionality instead",
                manifest.display()
            );
        }
    }
}

#[test]
fn workspace_dependency_table_is_path_only() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    let toml = std::fs::read_to_string(root).expect("root manifest");
    let mut in_table = false;
    let mut seen = 0;
    for raw in toml.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if in_table && !line.is_empty() && !line.starts_with('#') {
            seen += 1;
            assert!(
                line.contains("path ="),
                "[workspace.dependencies] entry without a path: `{line}`"
            );
        }
    }
    assert_eq!(seen, 9, "expected exactly the 9 member-crate entries");
}

/// The manifest-level guard above and paradyn-lint's source-level
/// `hermeticity` rule must agree on what the workspace contains: every
/// member crate the manifests declare is in the lint's allowlist, and the
/// lint allows nothing beyond those members (plus the root package).
#[test]
fn lint_allowlist_matches_manifest_guard() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let allow = paradyn_lint::workspace_crate_allowlist(root).expect("allowlist");
    for manifest in workspace_manifests().iter().skip(1) {
        let toml = std::fs::read_to_string(manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        let name = toml
            .lines()
            .map(str::trim)
            .find_map(|l| l.strip_prefix("name = "))
            .unwrap_or_else(|| panic!("{}: no package name", manifest.display()))
            .trim_matches('"')
            .replace('-', "_");
        assert!(
            allow.contains(&name),
            "member `{name}` missing from the lint's hermeticity allowlist"
        );
    }
    // 9 members + the root `paradyn-isim` package; nothing else may be
    // importable at the source level.
    assert_eq!(
        allow.len(),
        10,
        "lint allowlist lists a crate the manifests do not declare: {allow:?}"
    );
}

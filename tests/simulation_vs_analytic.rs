//! Cross-checks between the discrete-event simulation (paradyn-core) and
//! the operational-law analysis (paradyn-analytic) — the paper uses the
//! analytic results "as an intuitive check on the simulation results"
//! (Section 3); these tests automate that check where flow balance holds.

use paradyn_analytic::{now_metrics, smp_metrics, Demands, Knobs};
use paradyn_core::{run, Arch, SimConfig};
use paradyn_workload::RoccParams;

/// At light load and with background disabled, the simulated daemon CPU
/// utilization must match the utilization law within sampling noise.
#[test]
fn now_daemon_utilization_matches_utilization_law() {
    let cfg = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 8,
        duration_s: 30.0,
        background: false,
        ..Default::default()
    };
    let sim = run(&cfg);
    let knobs = Knobs {
        nodes: 8,
        ..Default::default()
    };
    let analytic = now_metrics(&knobs, &Demands::from_params(&RoccParams::default(), 1, false));
    let rel = (sim.pd_cpu_util_per_node - analytic.pd_cpu_util).abs() / analytic.pd_cpu_util;
    assert!(
        rel < 0.15,
        "sim {} vs analytic {} ({}%)",
        sim.pd_cpu_util_per_node,
        analytic.pd_cpu_util,
        rel * 100.0
    );
}

/// The analytic main-process utilization (eq. 5) bounds/approximates the
/// simulated one across a node sweep.
#[test]
fn main_utilization_tracks_equation_five() {
    for nodes in [4usize, 16] {
        let cfg = SimConfig {
            arch: Arch::Now {
                contention_free: true,
            },
            nodes,
            duration_s: 20.0,
            background: false,
            ..Default::default()
        };
        let sim = run(&cfg);
        let analytic = now_metrics(
            &Knobs {
                nodes,
                ..Default::default()
            },
            &Demands::from_params(&RoccParams::default(), 1, false),
        );
        let rel = (sim.main_cpu_util - analytic.main_cpu_util).abs() / analytic.main_cpu_util;
        assert!(
            rel < 0.2,
            "nodes={nodes}: sim {} vs analytic {}",
            sim.main_cpu_util,
            analytic.main_cpu_util
        );
    }
}

/// Monitoring latency at light load approaches the open-network residence
/// time (eq. 4): service demands with negligible queueing.
#[test]
fn light_load_latency_approaches_analytic_residence() {
    let cfg = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 2,
        sampling_period_us: 100_000.0,
        duration_s: 60.0,
        background: false,
        ..Default::default()
    };
    let sim = run(&cfg);
    // eq. 4's floor: D_pd_cpu + D_pd_net at ~zero IS utilization, plus the
    // main process handling (~350us) which our receipt point includes.
    let floor = (267.0 + 71.0 + 350.0) * 1e-6;
    assert!(
        sim.fwd_latency_mean_s > floor,
        "latency {} below service floor {floor}",
        sim.fwd_latency_mean_s
    );
    // The excess over the floor is residual-life waiting behind the
    // application's CPU bursts — precisely the cross-workload dependence
    // the paper says its operational analysis cannot incorporate
    // (Section 3). Mean residual of lognormal(2213, 3034) is
    // E[X^2]/(2 E[X]) ~ 3.2 ms; daemon and main jobs each wait behind one
    // busy application with probability ~rho_app ~ 0.9.
    let residual = (2213.0f64.powi(2) + 3034.0f64.powi(2)) / (2.0 * 2213.0) * 1e-6;
    let ceiling = floor + 2.0 * residual;
    assert!(
        sim.fwd_latency_mean_s < ceiling,
        "latency {} above contention ceiling {ceiling}",
        sim.fwd_latency_mean_s
    );
}

/// The SMP analytic model and the simulation agree that the IS utilization
/// per node falls as CPUs are added (eq. 7's 1/n scaling).
#[test]
fn smp_is_utilization_dilutes_with_cpus() {
    let analytic_of = |n: usize| {
        smp_metrics(
            &Knobs {
                nodes: n,
                apps_per_node: 8,
                ..Default::default()
            },
            &Demands::from_params(&RoccParams::default(), 1, false),
        )
        .is_cpu_util
    };
    let sim_of = |n: usize| {
        run(&SimConfig {
            arch: Arch::Smp,
            nodes: n,
            apps_per_node: 8,
            duration_s: 15.0,
            background: false,
            ..Default::default()
        })
        .is_cpu_util_per_node
    };
    let (a4, a16) = (analytic_of(4), analytic_of(16));
    let (s4, s16) = (sim_of(4), sim_of(16));
    assert!(a4 > a16);
    assert!(s4 > s16, "sim dilution {s4} -> {s16}");
    // Dilution factor roughly 4x in both.
    assert!((a4 / a16 - 4.0).abs() < 0.5);
    assert!((2.0..8.0).contains(&(s4 / s16)), "sim ratio {}", s4 / s16);
}

/// The paper's argument for rejecting MVA: its application CPU utilization
/// is insensitive to IS knobs, while the simulation responds to them.
#[test]
fn mva_is_blind_to_sampling_but_simulation_is_not() {
    let mva = paradyn_analytic::app_cpu_utilization_mva(2213e-6, 223e-6, 1);
    // MVA doesn't model the IS at all — one value regardless of sampling.
    assert!((mva - 2213.0 / 2436.0).abs() < 1e-9);
    let base = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 1,
        apps_per_node: 4,
        duration_s: 15.0,
        ..Default::default()
    };
    let slow = run(&SimConfig {
        sampling_period_us: 64_000.0,
        ..base.clone()
    });
    let fast = run(&SimConfig {
        sampling_period_us: 2_000.0,
        ..base
    });
    assert!(
        fast.app_cpu_util_per_node < slow.app_cpu_util_per_node,
        "simulation must show IS contention: fast {} slow {}",
        fast.app_cpu_util_per_node,
        slow.app_cpu_util_per_node
    );
}

//! Measurement-based validation on the real threaded mini-IS — the
//! Section 5 experiments as tests. Skipped gracefully when the platform
//! lacks fine-grained per-thread CPU accounting.

use paradyn_stats::Design2kr;
use paradyn_testbed::{run, CpuTimeSource, KernelKind, Policy, TestbedConfig};
use std::time::Duration;

fn fine_accounting() -> bool {
    paradyn_testbed::self_check().0 == CpuTimeSource::SchedStat
}

fn cfg(policy: Policy, kernel: KernelKind) -> TestbedConfig {
    TestbedConfig {
        policy,
        kernel,
        sampling_period: Duration::from_millis(2),
        duration: Duration::from_secs(2),
        nodes: 2,
        ..Default::default()
    }
}

#[test]
fn no_samples_are_lost_and_ordering_is_preserved() {
    let m = run(&cfg(Policy::Cf, KernelKind::Bt)).expect("run");
    assert_eq!(m.samples_generated, m.samples_received);
    let m = run(&cfg(Policy::Bf { batch: 16 }, KernelKind::Bt)).expect("run");
    assert_eq!(m.samples_generated, m.samples_received);
}

#[test]
fn bf_reduces_measured_daemon_and_main_cpu() {
    if !fine_accounting() {
        eprintln!("skipping: no schedstat on this kernel");
        return;
    }
    let cf = run(&cfg(Policy::Cf, KernelKind::Bt)).expect("run");
    let bf = run(&cfg(Policy::Bf { batch: 32 }, KernelKind::Bt)).expect("run");
    // The paper's Section 5 band is >60%/~80%; allow measurement noise on
    // short CI runs but demand a decisive reduction.
    let pd_red = 1.0 - bf.pd_cpu.as_secs_f64() / cf.pd_cpu.as_secs_f64();
    let main_red = 1.0 - bf.main_cpu.as_secs_f64() / cf.main_cpu.as_secs_f64();
    assert!(pd_red > 0.35, "daemon reduction only {:.0}%", pd_red * 100.0);
    assert!(main_red > 0.35, "main reduction only {:.0}%", main_red * 100.0);
}

#[test]
fn reduction_is_application_independent() {
    // Table 8's finding: the policy, not the program, explains the
    // normalized-overhead variation.
    if !fine_accounting() {
        eprintln!("skipping: no schedstat on this kernel");
        return;
    }
    let mut d = Design2kr::new(vec!["policy", "application"]);
    for (bits, policy, kernel) in [
        (0b00, Policy::Cf, KernelKind::Bt),
        (0b01, Policy::Bf { batch: 32 }, KernelKind::Bt),
        (0b10, Policy::Cf, KernelKind::Is),
        (0b11, Policy::Bf { batch: 32 }, KernelKind::Is),
    ] {
        let m = run(&cfg(policy, kernel)).expect("run");
        d.set_responses(bits, vec![m.pd_normalized()]);
    }
    let v = d.analyze();
    let policy_pct = v.pct_of("A").expect("term");
    let app_pct = v.pct_of("B").expect("term");
    assert!(
        policy_pct > app_pct,
        "policy {policy_pct}% should dominate application {app_pct}%"
    );
    assert!(policy_pct > 50.0, "policy explains only {policy_pct}%");
}

#[test]
fn forward_op_counts_match_policy_arithmetic() {
    let cf = run(&cfg(Policy::Cf, KernelKind::Is)).expect("run");
    assert_eq!(cf.forward_ops, cf.samples_generated);
    let bf = run(&cfg(Policy::Bf { batch: 8 }, KernelKind::Is)).expect("run");
    // Each of the two daemons batches its own stream: per-daemon
    // ceil(g_i/8), so systemwide ops lie in [ceil(total/8), ceil(total/8)+nodes].
    let floor = bf.samples_generated.div_ceil(8);
    assert!(
        (floor..=floor + 2).contains(&bf.forward_ops),
        "ops {} outside [{floor}, {}] for {} samples",
        bf.forward_ops,
        floor + 2,
        bf.samples_generated
    );
    // Batched arrivals reach the collector in few reads. (Not compared
    // against CF: under heavy machine load the CF collector can also batch
    // reads while descheduled, so only BF's own bound is load-independent.)
    assert!(
        bf.collector_reads <= bf.samples_received / 2 + 2,
        "reads {} for {} samples",
        bf.collector_reads,
        bf.samples_received
    );
}

#[test]
fn latency_includes_batch_accumulation() {
    let cf = run(&cfg(Policy::Cf, KernelKind::Bt)).expect("run");
    let bf = run(&cfg(Policy::Bf { batch: 32 }, KernelKind::Bt)).expect("run");
    // With a 2 ms sampling period, a 32-batch takes ~64 ms to fill; mean
    // accumulation wait ~32 ms. CF latency is sub-millisecond.
    assert!(cf.latency_mean < Duration::from_millis(10), "{:?}", cf.latency_mean);
    assert!(bf.latency_mean > cf.latency_mean);
}

#[test]
fn both_kernels_make_progress_under_instrumentation() {
    for kernel in [KernelKind::Bt, KernelKind::Is] {
        let m = run(&cfg(Policy::Cf, kernel)).expect("run");
        assert!(m.kernel_steps > 10, "{kernel:?} steps {}", m.kernel_steps);
        assert!(m.app_cpu > Duration::from_millis(200));
    }
}

//! End-to-end workload-characterization pipeline tests: ground truth →
//! synthetic trace → codec round trip → Table 1/2 analysis → ROCC
//! parameters → validated simulation (the full Section 2 methodology).

use paradyn_core::{run, validation_config, SimConfig};
use paradyn_stats::SplitMix64;
use paradyn_workload::{
    characterize, synthesize, table1, ProcessClass, Resource, RoccParams, SynthConfig, Trace,
};

fn trace() -> Trace {
    synthesize(
        &SynthConfig {
            duration_us: 40.0e6,
            ..Default::default()
        },
        &mut SplitMix64(2024),
    )
}

#[test]
fn trace_codec_preserves_analysis_results() {
    let t = trace();
    let mut buf = Vec::new();
    t.write_to(&mut buf).expect("write");
    let t2 = Trace::read_from(&buf[..]).expect("read");
    assert_eq!(t.len(), t2.len());
    // Table 1 computed before and after the round trip agrees (codec
    // stores 3 decimal places of microseconds; means move by < 0.1%).
    let a = table1(&t);
    let b = table1(&t2);
    for (ra, rb) in a.iter().zip(&b) {
        let (sa, sb) = (ra.cpu.as_ref().unwrap(), rb.cpu.as_ref().unwrap());
        assert_eq!(sa.n, sb.n);
        assert!((sa.mean - sb.mean).abs() / sa.mean < 1e-3);
    }
}

#[test]
fn pipeline_recovers_ground_truth_families_and_means() {
    let ch = characterize(&trace());
    // Families per Table 2 (exponential may fit as Weibull k~1).
    let app = ch.class(ProcessClass::Application);
    assert_eq!(app.best_cpu().expect("fit").family(), "lognormal");
    let pvmd = ch.class(ProcessClass::PvmDaemon);
    assert_eq!(pvmd.best_cpu().expect("fit").family(), "lognormal");
    // Means within 10% of Table 2 across the board.
    let checks = [
        (app.best_cpu().unwrap().mean(), 2213.0),
        (app.best_net().unwrap().mean(), 223.0),
        (ch.class(ProcessClass::ParadynDaemon).best_cpu().unwrap().mean(), 267.0),
        (pvmd.best_cpu().unwrap().mean(), 294.0),
        (ch.class(ProcessClass::Other).best_cpu().unwrap().mean(), 367.0),
        (ch.class(ProcessClass::MainParadyn).best_cpu().unwrap().mean(), 3208.0),
    ];
    for (got, want) in checks {
        assert!(
            (got - want).abs() / want < 0.10,
            "fitted mean {got} vs table-2 {want}"
        );
    }
}

#[test]
fn fitted_parameters_drive_a_valid_simulation() {
    // The complete loop: characterization output parameterizes the ROCC
    // model and reproduces the Table 3 validation band.
    let params: RoccParams = characterize(&trace()).to_rocc_params(&RoccParams::default());
    let cfg = SimConfig {
        params,
        ..validation_config()
    };
    let m = run(&cfg);
    let app = m.cpu_time_s(ProcessClass::Application);
    let pd = m.cpu_time_s(ProcessClass::ParadynDaemon);
    assert!((app - 85.71).abs() / 85.71 < 0.10, "app CPU {app}");
    assert!((pd - 0.74).abs() / 0.74 < 0.40, "pd CPU {pd}");
}

#[test]
fn interarrival_statistics_identify_sampling_rate() {
    let t = trace();
    let ia = t.interarrivals(ProcessClass::ParadynDaemon, Resource::Cpu);
    let mean = ia.iter().sum::<f64>() / ia.len() as f64;
    assert!((mean - 40_000.0).abs() / 40_000.0 < 0.10, "ia mean {mean}");
}

#[test]
fn characterization_is_seed_stable() {
    // Two different seeds give statistically equivalent parameterizations
    // (the pipeline measures the distribution, not the noise).
    let p1 = characterize(&synthesize(
        &SynthConfig {
            duration_us: 40.0e6,
            ..Default::default()
        },
        &mut SplitMix64(1),
    ))
    .to_rocc_params(&RoccParams::default());
    let p2 = characterize(&synthesize(
        &SynthConfig {
            duration_us: 40.0e6,
            ..Default::default()
        },
        &mut SplitMix64(2),
    ))
    .to_rocc_params(&RoccParams::default());
    let rel = (p1.app.cpu_req.mean() - p2.app.cpu_req.mean()).abs() / p1.app.cpu_req.mean();
    assert!(rel < 0.10, "seed sensitivity {rel}");
}

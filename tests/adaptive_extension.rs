//! Tests for the Section 6 extension: batch flush timeouts and adaptive
//! per-daemon batch regulation ("the IS can use the model to adapt its
//! behavior in order to regulate overheads").

use paradyn_core::{run, AdaptiveBatch, Arch, SimConfig};

fn base(duration_s: f64) -> SimConfig {
    SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 4,
        duration_s,
        ..Default::default()
    }
}

#[test]
fn flush_timeout_bounds_bf_latency() {
    // Pure BF(32) at 40 ms sampling takes ~1.3 s to fill a batch; a 100 ms
    // flush timeout must cap the full (accumulation-inclusive) latency.
    let pure = run(&SimConfig {
        batch: 32,
        ..base(20.0)
    });
    let bounded = run(&SimConfig {
        batch: 32,
        batch_timeout_us: Some(100_000.0),
        ..base(20.0)
    });
    assert!(pure.latency_mean_s > 0.3, "pure BF latency {}", pure.latency_mean_s);
    assert!(
        bounded.latency_mean_s < 0.15,
        "bounded latency {}",
        bounded.latency_mean_s
    );
    // The timeout costs some batching efficiency but must still beat CF.
    let cf = run(&base(20.0));
    assert!(bounded.pd_cpu_per_node_s < cf.pd_cpu_per_node_s);
    // No samples are lost by partial flushes.
    assert!(bounded.received_samples as f64 > 0.95 * bounded.generated_samples as f64);
}

#[test]
fn flush_timeout_with_cf_is_inert() {
    // CF forwards each sample immediately; a timeout changes nothing.
    let plain = run(&base(10.0));
    let with_timeout = run(&SimConfig {
        batch_timeout_us: Some(50_000.0),
        ..base(10.0)
    });
    assert_eq!(plain.forwarded_batches, with_timeout.forwarded_batches);
    assert_eq!(plain.received_samples, with_timeout.received_samples);
}

#[test]
fn adaptive_grows_batch_under_load() {
    // At 5 ms sampling (200 samples/s/node) CF costs ~5.3% daemon CPU.
    // A 2% budget is feasible (the per-sample marginal floor is
    // 200/s x 60 us = 1.2%), so the controller must escalate the batch
    // until the budget is met.
    let m = run(&SimConfig {
        sampling_period_us: 5_000.0,
        adaptive: Some(AdaptiveBatch {
            target_pd_util: 0.02,
            interval_us: 250_000.0,
            min_batch: 1,
            max_batch: 128,
        }),
        batch_timeout_us: Some(500_000.0),
        ..base(20.0)
    });
    assert!(
        m.mean_daemon_batch > 2.0,
        "controller stayed at batch {}",
        m.mean_daemon_batch
    );
    assert!(m.batch_adjustments > 0);
    // Budget met with headroom for control ripple.
    assert!(
        m.pd_cpu_util_per_node < 0.03,
        "util {} vs budget 0.02",
        m.pd_cpu_util_per_node
    );
    // And far below the CF cost.
    let cf = run(&SimConfig {
        sampling_period_us: 5_000.0,
        ..base(20.0)
    });
    assert!(m.pd_cpu_util_per_node < 0.7 * cf.pd_cpu_util_per_node);
}

#[test]
fn adaptive_shrinks_batch_when_idle() {
    // At a slow 80 ms sampling rate, even CF is far below a generous 5%
    // budget, so the controller should settle near min_batch for latency.
    let m = run(&SimConfig {
        sampling_period_us: 80_000.0,
        batch: 64, // start high on purpose
        adaptive: Some(AdaptiveBatch {
            target_pd_util: 0.05,
            interval_us: 250_000.0,
            min_batch: 1,
            max_batch: 128,
        }),
        batch_timeout_us: Some(1_000_000.0),
        ..base(20.0)
    });
    assert!(
        m.mean_daemon_batch < 4.0,
        "controller stuck at batch {}",
        m.mean_daemon_batch
    );
}

#[test]
fn adaptive_beats_both_static_policies_on_the_pareto_axes() {
    // The point of regulation: near-CF latency with near-BF overhead,
    // under a budget between the two extremes. One app at 5 ms sampling:
    // CF costs 5.3%; BF(64) takes 320 ms to fill a batch.
    let cfg = SimConfig {
        sampling_period_us: 5_000.0,
        ..base(20.0)
    };
    let cf = run(&cfg);
    let bf = run(&SimConfig {
        batch: 64,
        ..cfg.clone()
    });
    let adaptive = run(&SimConfig {
        adaptive: Some(AdaptiveBatch {
            target_pd_util: 0.02,
            interval_us: 250_000.0,
            min_batch: 1,
            max_batch: 64,
        }),
        batch_timeout_us: Some(200_000.0),
        ..cfg
    });
    // Much cheaper than CF...
    assert!(
        adaptive.pd_cpu_per_node_s < 0.6 * cf.pd_cpu_per_node_s,
        "adaptive {} vs cf {}",
        adaptive.pd_cpu_per_node_s,
        cf.pd_cpu_per_node_s
    );
    // ...much lower full latency than unbounded BF(64).
    assert!(
        adaptive.latency_mean_s < 0.5 * bf.latency_mean_s,
        "adaptive {} vs bf {}",
        adaptive.latency_mean_s,
        bf.latency_mean_s
    );
}

#[test]
fn invalid_adaptive_configs_rejected() {
    let bad_bounds = SimConfig {
        adaptive: Some(AdaptiveBatch {
            min_batch: 16,
            max_batch: 4,
            ..Default::default()
        }),
        ..base(1.0)
    };
    assert!(bad_bounds.validate().is_err());
    let bad_target = SimConfig {
        adaptive: Some(AdaptiveBatch {
            target_pd_util: 0.0,
            ..Default::default()
        }),
        ..base(1.0)
    };
    assert!(bad_target.validate().is_err());
    let bad_timeout = SimConfig {
        batch_timeout_us: Some(-1.0),
        ..base(1.0)
    };
    assert!(bad_timeout.validate().is_err());
}

#[test]
fn determinism_holds_with_adaptive_regulation() {
    let cfg = SimConfig {
        adaptive: Some(AdaptiveBatch::default()),
        batch_timeout_us: Some(100_000.0),
        ..base(5.0)
    };
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(a.events, b.events);
    assert_eq!(a.received_samples, b.received_samples);
    assert_eq!(a.mean_daemon_batch, b.mean_daemon_batch);
}
